// Package svo implements the Selective Velocity Obstacle (SVO) collision
// avoidance method of Jenie et al. (AIAA GNC 2013), the simpler algorithm
// the authors validated with the same GA-based search technique in their
// earlier study (paper reference [7]) before applying it to ACAS XU.
//
// The velocity obstacle of an intruder is the cone of relative velocities
// that lead the own-ship inside the intruder's protected zone. When the
// current relative velocity lies inside the cone, the own-ship steers so
// the relative velocity exits the cone. The *selective* element is the
// implicit coordination rule: every aircraft resolves to the same
// predefined side (here: the right-hand cone edge), so two cooperating
// aircraft turn in compatible directions without exchanging intentions.
package svo

import (
	"fmt"
	"math"

	"acasxval/internal/geom"
	"acasxval/internal/sim"
	"acasxval/internal/uav"
)

// Config parameterizes the SVO system.
type Config struct {
	// ProtectedRadius is the horizontal protected zone around each
	// aircraft, metres (default: the NMAC horizontal threshold).
	ProtectedRadius float64
	// TimeHorizon limits how far ahead a predicted zone entry triggers
	// avoidance, seconds.
	TimeHorizon float64
	// Margin widens the avoidance cone, radians, so the resolution aims
	// slightly outside the geometric edge.
	Margin float64
}

// DefaultConfig returns the parameterization used by the experiments.
func DefaultConfig() Config {
	return Config{
		ProtectedRadius: geom.NMACHorizontal,
		TimeHorizon:     60,
		Margin:          5 * math.Pi / 180,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.ProtectedRadius <= 0 {
		return fmt.Errorf("svo: ProtectedRadius %v <= 0", c.ProtectedRadius)
	}
	if c.TimeHorizon <= 0 {
		return fmt.Errorf("svo: TimeHorizon %v <= 0", c.TimeHorizon)
	}
	if c.Margin < 0 {
		return fmt.Errorf("svo: negative Margin %v", c.Margin)
	}
	return nil
}

// System implements sim.System with the SVO method.
type System struct {
	cfg      Config
	alerting bool
}

var _ sim.System = (*System)(nil)

// New creates an SVO system.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &System{cfg: cfg}, nil
}

// Reset implements sim.System.
func (s *System) Reset() { s.alerting = false }

// Conflict describes the velocity-obstacle geometry of one intruder.
type Conflict struct {
	// Inside reports whether the current relative velocity is inside the
	// collision cone within the time horizon.
	Inside bool
	// TimeToEntry is the predicted time until protected-zone entry.
	TimeToEntry float64
	// ResolutionHeading is the own-ship heading that takes the relative
	// velocity to the selected (right-hand) cone edge.
	ResolutionHeading float64
}

// Analyze computes the velocity-obstacle geometry for own-ship state and an
// intruder track.
func (s *System) Analyze(own uav.State, intrPos, intrVel geom.Vec3) Conflict {
	r := intrPos.Sub(own.Pos).Horizontal()
	dist := r.Norm()
	if dist <= s.cfg.ProtectedRadius {
		// Already inside the zone: steer directly away from the intruder.
		away := math.Atan2(-r.Y, -r.X)
		return Conflict{Inside: true, TimeToEntry: 0, ResolutionHeading: geom.WrapAngle(away)}
	}
	vRel := own.VelVec().Sub(intrVel).Horizontal() // own velocity relative to intruder
	speed := vRel.Norm()
	if speed == 0 {
		return Conflict{TimeToEntry: math.Inf(1)}
	}
	// Collision cone: apex at own-ship, axis toward the intruder,
	// half-angle asin(R/dist).
	halfAngle := math.Asin(geom.Clamp(s.cfg.ProtectedRadius/dist, 0, 1))
	axis := math.Atan2(r.Y, r.X)
	relHeading := math.Atan2(vRel.Y, vRel.X)
	off := geom.WrapSigned(relHeading - axis)
	inside := math.Abs(off) < halfAngle

	// Predicted time to zone entry along the current relative velocity.
	entry := math.Inf(1)
	if inside {
		// Distance to the zone boundary along the relative velocity ray.
		closing := speed * math.Cos(off)
		if closing > 0 {
			entry = (dist - s.cfg.ProtectedRadius) / closing
		}
	}

	c := Conflict{
		Inside:      inside && entry <= s.cfg.TimeHorizon,
		TimeToEntry: entry,
	}
	if c.Inside {
		// Selective rule: always resolve toward the right-hand edge of the
		// cone (negative rotation of the relative velocity), so both
		// aircraft in a reciprocal conflict pass left-side-to-left-side.
		targetRel := axis - (halfAngle + s.cfg.Margin)
		// The new own velocity must be v_rel' + v_intr with v_rel' of the
		// same relative speed rotated onto the cone edge.
		vRelNew := geom.Vec3{X: speed * math.Cos(targetRel), Y: speed * math.Sin(targetRel)}
		vOwnNew := vRelNew.Add(intrVel.Horizontal())
		c.ResolutionHeading = geom.WrapAngle(math.Atan2(vOwnNew.Y, vOwnNew.X))
	}
	return c
}

// Decide implements sim.System.
func (s *System) Decide(_ float64, own uav.State, intrPos, intrVel geom.Vec3, _ sim.Constraint) sim.Decision {
	c := s.Analyze(own, intrPos, intrVel)
	if !c.Inside {
		s.alerting = false
		return sim.Decision{}
	}
	newAlert := !s.alerting
	s.alerting = true
	return sim.Decision{
		Cmd: uav.Command{
			HasHeading:    true,
			TargetHeading: c.ResolutionHeading,
		},
		HasCmd:   true,
		Alerting: true,
		NewAlert: newAlert,
		// Horizontal-only resolution claims no vertical sense.
		Sense: sim.SenseNone,
	}
}
