package svo

import (
	"math"
	"testing"

	"acasxval/internal/encounter"
	"acasxval/internal/geom"
	"acasxval/internal/sim"
	"acasxval/internal/uav"
)

func mustSystem(t *testing.T) *System {
	t.Helper()
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"radius", func(c *Config) { c.ProtectedRadius = 0 }},
		{"horizon", func(c *Config) { c.TimeHorizon = 0 }},
		{"margin", func(c *Config) { c.Margin = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestHeadOnConflictDetected(t *testing.T) {
	s := mustSystem(t)
	own := uav.State{Vel: geom.Velocity{Gs: 50, Psi: 0}}
	c := s.Analyze(own, geom.Vec3{X: 2000}, geom.Vec3{X: -50})
	if !c.Inside {
		t.Fatal("head-on conflict not detected")
	}
	// Closing at 100 m/s from 2000 m with a ~152 m zone: entry in ~18.5 s.
	if math.Abs(c.TimeToEntry-18.5) > 1 {
		t.Errorf("TimeToEntry = %v, want ~18.5", c.TimeToEntry)
	}
	// The selective rule resolves right: target heading south of east
	// (negative Y side) for an intruder dead ahead.
	if d := geom.WrapSigned(c.ResolutionHeading); d > 0 {
		t.Errorf("resolution heading %v not on the right side", c.ResolutionHeading)
	}
}

func TestNoConflictWhenDiverging(t *testing.T) {
	s := mustSystem(t)
	own := uav.State{Vel: geom.Velocity{Gs: 50, Psi: 0}}
	c := s.Analyze(own, geom.Vec3{X: -2000}, geom.Vec3{X: -50})
	if c.Inside {
		t.Error("diverging traffic flagged as conflict")
	}
	d := s.Decide(0, own, geom.Vec3{X: -2000}, geom.Vec3{X: -50}, sim.Constraint{})
	if d.HasCmd || d.Alerting {
		t.Error("diverging traffic produced a command")
	}
}

func TestNoConflictBeyondHorizon(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TimeHorizon = 10
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	own := uav.State{Vel: geom.Velocity{Gs: 50, Psi: 0}}
	// Entry in ~18.5 s but horizon is 10 s.
	c := s.Analyze(own, geom.Vec3{X: 2000}, geom.Vec3{X: -50})
	if c.Inside {
		t.Error("conflict beyond the time horizon flagged")
	}
}

func TestInsideZoneSteersAway(t *testing.T) {
	s := mustSystem(t)
	own := uav.State{Vel: geom.Velocity{Gs: 50, Psi: 0}}
	// Intruder 100 m ahead: already inside the 152 m zone.
	c := s.Analyze(own, geom.Vec3{X: 100}, geom.Vec3{X: -50})
	if !c.Inside || c.TimeToEntry != 0 {
		t.Fatal("inside-zone case not flagged")
	}
	// Away heading: roughly west (pi).
	if math.Abs(geom.WrapSigned(c.ResolutionHeading-math.Pi)) > 0.1 {
		t.Errorf("away heading = %v, want ~pi", c.ResolutionHeading)
	}
}

func TestOffsetPassNoConflict(t *testing.T) {
	s := mustSystem(t)
	own := uav.State{Vel: geom.Velocity{Gs: 50, Psi: 0}}
	// Intruder parallel track 1 km to the side: relative velocity outside
	// the cone.
	c := s.Analyze(own, geom.Vec3{X: 2000, Y: 1000}, geom.Vec3{X: -50})
	if c.Inside {
		t.Error("well-separated parallel pass flagged")
	}
}

func TestZeroRelativeVelocity(t *testing.T) {
	s := mustSystem(t)
	own := uav.State{Vel: geom.Velocity{Gs: 50, Psi: 0}}
	c := s.Analyze(own, geom.Vec3{X: 2000}, geom.Vec3{X: 50})
	if c.Inside {
		t.Error("formation flight flagged as conflict")
	}
	if !math.IsInf(c.TimeToEntry, 1) {
		t.Errorf("TimeToEntry = %v, want +inf", c.TimeToEntry)
	}
}

func TestReciprocalResolutionIsCompatible(t *testing.T) {
	// Both aircraft in a symmetric head-on apply the selective rule; their
	// resolution headings must rotate them to the same side (each passes
	// with the other on its left).
	s1 := mustSystem(t)
	s2 := mustSystem(t)
	a := uav.State{Pos: geom.Vec3{X: 0}, Vel: geom.Velocity{Gs: 50, Psi: 0}}
	b := uav.State{Pos: geom.Vec3{X: 2000}, Vel: geom.Velocity{Gs: 50, Psi: math.Pi}}
	ca := s1.Analyze(a, b.Pos, b.VelVec())
	cb := s2.Analyze(b, a.Pos, a.VelVec())
	if !ca.Inside || !cb.Inside {
		t.Fatal("reciprocal conflict not detected by both")
	}
	// Each aircraft turns right in its own frame (negative heading change),
	// which makes the maneuvers compatible: both pass left-to-left.
	da := geom.WrapSigned(ca.ResolutionHeading - 0)
	db := geom.WrapSigned(cb.ResolutionHeading - math.Pi)
	if da >= 0 || db >= 0 {
		t.Errorf("resolutions not both right turns: da=%v db=%v", da, db)
	}
}

// TestSVOResolvesHeadOnInSim runs the full closed loop: two SVO-equipped
// aircraft in the head-on preset must not NMAC.
func TestSVOResolvesHeadOnInSim(t *testing.T) {
	mk := func() sim.System {
		s, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cfg := sim.DefaultRunConfig()
	cfg.UseTracker = true
	res, err := sim.RunEncounter(encounter.PresetHeadOn(), mk(), mk(), cfg, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.NMAC {
		t.Fatalf("SVO head-on collided (min sep %v)", res.MinSeparation)
	}
	if !res.Alerted() {
		t.Error("SVO never alerted in head-on")
	}
}

func TestAlertAccounting(t *testing.T) {
	s := mustSystem(t)
	own := uav.State{Vel: geom.Velocity{Gs: 50, Psi: 0}}
	d1 := s.Decide(0, own, geom.Vec3{X: 2000}, geom.Vec3{X: -50}, sim.Constraint{})
	if !d1.NewAlert {
		t.Error("first conflict decision not flagged as new alert")
	}
	d2 := s.Decide(1, own, geom.Vec3{X: 1900}, geom.Vec3{X: -50}, sim.Constraint{})
	if d2.NewAlert {
		t.Error("continued conflict flagged as new alert")
	}
	s.Reset()
	d3 := s.Decide(2, own, geom.Vec3{X: 1800}, geom.Vec3{X: -50}, sim.Constraint{})
	if !d3.NewAlert {
		t.Error("alert state survived Reset")
	}
}
