// Package durable provides the crash-safe file primitives shared by the
// checkpoint, archive and journal writers. Three hazards motivate it:
//
//   - A summary or checkpoint replaced by plain write-then-rename survives a
//     process crash but not a power loss: the rename can hit the disk before
//     the data does, leaving a complete-looking file full of zeros.
//     WriteFileAtomic fsyncs the temp file before the rename and the
//     directory after it.
//
//   - An append-only journal that buffers in user space loses its tail on
//     any crash. AppendWriter fsyncs after every record, so a record that
//     was acknowledged is on disk.
//
//   - A JSONL file whose writer was killed mid-line ends in a half-written
//     fragment. A strict line scanner rejects the whole file; ScanJSONL
//     distinguishes the unterminated final fragment from a corrupt interior
//     line and skips only the former, reporting it so callers can warn.
package durable

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic replaces path with data durably: the bytes are written to
// a temp file in the same directory, fsynced, renamed over path, and the
// directory entry fsynced. After it returns, a crash at any point leaves
// either the complete old file or the complete new one — never a torn or
// empty intermediate.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("durable: write %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("durable: write %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("durable: write %s: %w", path, err)
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a just-created or just-renamed entry
// survives power loss. Best effort: some filesystems refuse directory
// fsync, and the data itself is already safe.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// AppendWriter is an append-only record log: every AppendLine is written
// and fsynced before returning, so an acknowledged record survives a crash.
// Not safe for concurrent use; callers serialize.
type AppendWriter struct {
	f *os.File
}

// OpenAppend opens (creating if needed) path for durable appends.
func OpenAppend(path string) (*AppendWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	// Make the file's existence durable too: a journal whose first record
	// is on disk but whose directory entry is not would vanish on power
	// loss.
	syncDir(filepath.Dir(path))
	return &AppendWriter{f: f}, nil
}

// AppendLine appends data plus a newline and fsyncs. The newline is the
// record terminator ScanJSONL keys off: a record missing it is, by
// construction, a crash tail.
func (w *AppendWriter) AppendLine(data []byte) error {
	if bytes.IndexByte(data, '\n') >= 0 {
		return fmt.Errorf("durable: record contains a newline")
	}
	buf := make([]byte, 0, len(data)+1)
	buf = append(buf, data...)
	buf = append(buf, '\n')
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("durable: append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: append: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (w *AppendWriter) Close() error {
	return w.f.Close()
}

// ScanJSONL hands every non-empty line of r (with its 1-based line number,
// trailing \r\n or \n stripped) to decode. A decode error on a
// newline-terminated line is fatal — the line was written completely, so
// it is corrupt, not truncated. A decode error on an unterminated final
// fragment is the signature of a writer killed mid-line: the fragment is
// skipped and truncated reports it, so callers can warn and continue with
// every record that was fully written. An unterminated final line that
// decodes cleanly is kept (files written without a trailing newline stay
// loadable).
func ScanJSONL(r io.Reader, decode func(line int, data []byte) error) (truncated bool, err error) {
	br := bufio.NewReaderSize(r, 64*1024)
	line := 0
	for {
		data, rerr := br.ReadBytes('\n')
		complete := rerr == nil
		if rerr != nil && rerr != io.EOF {
			return false, fmt.Errorf("durable: read line %d: %w", line+1, rerr)
		}
		if trimmed := trimEOL(data); len(trimmed) > 0 {
			line++
			if derr := decode(line, trimmed); derr != nil {
				if !complete {
					return true, nil
				}
				return false, derr
			}
		}
		if !complete {
			return false, nil
		}
	}
}

// trimEOL strips one trailing \n and an optional preceding \r.
func trimEOL(data []byte) []byte {
	data = bytes.TrimSuffix(data, []byte("\n"))
	return bytes.TrimSuffix(data, []byte("\r"))
}
