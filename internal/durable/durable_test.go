package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicReplacesAndRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFileAtomic(path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("content = %q, want %q", got, "second")
	}
	// No temp litter.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want 1 (temp files must be cleaned up)", len(entries))
	}
}

func TestAppendWriterRejectsEmbeddedNewline(t *testing.T) {
	w, err := OpenAppend(filepath.Join(t.TempDir(), "log.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.AppendLine([]byte("a\nb")); err == nil {
		t.Fatal("embedded newline accepted; it would forge a record boundary")
	}
}

func TestAppendAndScanRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.jsonl")
	w, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{`{"i":0}`, `{"i":1}`, `{"i":2}`}
	for _, rec := range want {
		if err := w.AppendLine([]byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var got []string
	truncated, err := ScanJSONL(f, func(line int, data []byte) error {
		got = append(got, string(data))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Fatal("clean log reported truncated")
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestScanJSONLCrashTail simulates a writer killed mid-record: the log ends
// in a half-written JSON fragment. The scan must keep every complete record,
// skip the fragment, and report the truncation — not fail the whole load.
func TestScanJSONLCrashTail(t *testing.T) {
	log := `{"i":0}` + "\n" + `{"i":1}` + "\n" + `{"i":2,"name":"tru`
	var got []int
	truncated, err := ScanJSONL(strings.NewReader(log), func(line int, data []byte) error {
		var rec struct {
			I int `json:"i"`
		}
		if err := json.Unmarshal(data, &rec); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		got = append(got, rec.I)
		return nil
	})
	if err != nil {
		t.Fatalf("crash tail failed the load: %v", err)
	}
	if !truncated {
		t.Fatal("crash tail not reported")
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("kept records %v, want [0 1]", got)
	}
}

// A corrupt line in the interior — newline-terminated, so fully written —
// must stay fatal: it is data corruption, not a crash artifact.
func TestScanJSONLInteriorCorruptionIsFatal(t *testing.T) {
	log := `{"i":0}` + "\n" + `{"i":1,garbage` + "\n" + `{"i":2}` + "\n"
	_, err := ScanJSONL(strings.NewReader(log), func(line int, data []byte) error {
		var rec struct{}
		return json.Unmarshal(data, &rec)
	})
	if err == nil {
		t.Fatal("interior corruption silently skipped")
	}
}

// A final line without a trailing newline that decodes cleanly is a valid
// record (hand-edited files), not a crash tail.
func TestScanJSONLKeepsValidUnterminatedTail(t *testing.T) {
	log := `{"i":0}` + "\n" + `{"i":1}`
	count := 0
	truncated, err := ScanJSONL(strings.NewReader(log), func(line int, data []byte) error {
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Fatal("valid unterminated tail reported as truncated")
	}
	if count != 2 {
		t.Fatalf("scanned %d records, want 2", count)
	}
}
