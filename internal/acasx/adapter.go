package acasx

import (
	"acasxval/internal/interp"
	"acasxval/internal/mdp"
)

// TauExpandedProblem builds the offline model as an explicit tabular MDP
// with tau folded into the state: state (k, c, ra) transitions to states at
// k-1, and tau = 0 states are terminal with the collision cost as their
// only reward. Solving this problem with the generic mdp solvers must
// reproduce the specialized backward-induction table builder exactly; the
// test suite uses this as a differential oracle. It is exponentially more
// memory-hungry than the specialized builder, so only coarse
// configurations are practical.
func TauExpandedProblem(cfg Config) (*mdp.Tabular, *model, error) {
	m, err := newModel(cfg)
	if err != nil {
		return nil, nil, err
	}
	slices := cfg.Grid.Horizon + 1
	numStates := slices * m.stateSize
	p := mdp.NewTabular(numStates, NumAdvisories)

	// Flat layout: k*stateSize + stateIndex(c, ra).
	terminal := m.terminalValues()
	var ws [16]interp.VertexWeight
	for c := 0; c < m.contSize; c++ {
		pt := m.grid.Point(c)
		h, dh0, dh1 := pt[0], pt[1], pt[2]
		for ra := 0; ra < NumAdvisories; ra++ {
			s0 := m.stateIndex(c, Advisory(ra))
			// tau = 0: terminal; reward is the terminal value for any
			// action.
			for a := 0; a < NumAdvisories; a++ {
				p.SetReward(s0, a, terminal[s0])
			}
			for k := 1; k < slices; k++ {
				s := k*m.stateSize + s0
				for a := 0; a < NumAdvisories; a++ {
					p.SetReward(s, a, m.eventCost(Advisory(ra), Advisory(a)))
					// Successor distribution: 3x3 sigma outcomes projected
					// onto the grid at slice k-1 with advisory state a.
					acc := make(map[int]float64, 16)
					for i := 0; i < 3; i++ {
						for j := 0; j < 3; j++ {
							hn, dh0n, dh1n := m.successor(h, dh0, dh1, Advisory(a), m.sigmaNodes[i], m.sigmaNodes[j])
							w := m.sigmaWeights[i] * m.sigmaWeights[j]
							pt2 := [3]float64{hn, dh0n, dh1n}
							wlist, _ := m.grid.WeightsAppend(ws[:0], pt2[:])
							for _, vw := range wlist {
								next := (k-1)*m.stateSize + m.stateIndex(vw.Flat, Advisory(a))
								acc[next] += w * vw.Weight
							}
						}
					}
					ts := make([]mdp.Transition, 0, len(acc))
					for next, prob := range acc {
						ts = append(ts, mdp.Transition{State: next, Prob: prob})
					}
					p.SetTransitions(s, a, ts)
				}
			}
		}
	}
	return p, m, nil
}
