package acasx

import (
	"math"

	"acasxval/internal/geom"
	"acasxval/internal/uav"
)

// Decision is one output of the online logic.
type Decision struct {
	// Advisory is the selected resolution advisory.
	Advisory Advisory
	// Tau is the estimated time to horizontal conflict used for the
	// decision (geom.TauUnbounded when not converging).
	Tau float64
	// H is the relative altitude (intruder minus own) used for the
	// decision, metres.
	H float64
	// Alerting reports whether an advisory other than COC is active.
	Alerting bool
	// NewAlert is true when this decision transitioned COC -> advisory.
	NewAlert bool
	// Reversal is true when this decision reversed advisory sense.
	Reversal bool
	// Strengthening is true when this decision strengthened the advisory.
	Strengthening bool
}

// Logic is the online collision avoidance executive for one aircraft: it
// tracks the active advisory, derives the MDP state (tau, h, vertical
// rates) from surveillance, and queries the logic table.
//
// Logic is not safe for concurrent use; each aircraft owns one instance.
type Logic struct {
	table    *Table
	advisory Advisory
	// decisions counts Decide calls; diagnostics only.
	decisions int
	// alerts counts COC -> advisory transitions.
	alerts int
	// reversals counts sense reversals.
	reversals int
	// multiQ is the per-threat query scratch of DecideMulti: the buffer
	// crosses the indirect query call of multiCycle, so a stack array
	// would escape and allocate every decision cycle.
	multiQ [NumAdvisories]float64
	// pendTau/pendH stash the decision geometry between BeginDecide and
	// FinishDecide so the split cycle recomputes nothing.
	pendTau, pendH float64
}

// NewLogic creates an executive around a built or loaded table.
func NewLogic(table *Table) *Logic {
	return &Logic{table: table}
}

// Advisory returns the currently active advisory.
func (l *Logic) Advisory() Advisory { return l.advisory }

// Table returns the logic table the executive queries, so a batched caller
// splitting the cycle with BeginDecide can route the pending query to the
// owning table's AllQValuesBatch.
func (l *Logic) Table() *Table { return l.table }

// Alerts returns the number of COC -> advisory transitions so far.
func (l *Logic) Alerts() int { return l.alerts }

// Reversals returns the number of sense reversals so far.
func (l *Logic) Reversals() int { return l.reversals }

// Reset clears the advisory state (new encounter).
func (l *Logic) Reset() {
	l.advisory = COC
	l.decisions = 0
	l.alerts = 0
	l.reversals = 0
}

// Decide runs one decision cycle. own is the aircraft's own state (assumed
// perfectly known); intrPos/intrVel is the intruder track from surveillance
// (possibly noisy/filtered); mask carries coordination constraints.
//
// Decide is exactly BeginDecide + one AllQValuesFast query + FinishDecide;
// the split form exists so the batched episode kernel can gather the table
// queries of many in-flight episodes and serve them grouped by grid cell
// (Table.AllQValuesBatch) without perturbing a single decision.
func (l *Logic) Decide(own uav.State, intrPos, intrVel geom.Vec3, mask SenseMask) Decision {
	d, q, need := l.BeginDecide(own, intrPos, intrVel)
	if !need {
		return d
	}
	// The shared-weight scan keeps the per-decision table query
	// allocation-free: one weight computation covers every advisory.
	var qv [NumAdvisories]float64
	bound := l.table.AllQValuesFast(&qv, q.Tau, q.H, q.DH0, q.DH1, q.RA)
	return l.FinishDecide(&qv, bound, own, intrPos, intrVel, mask)
}

// BeginDecide starts one decision cycle: it derives the MDP state from the
// track and either completes the cycle immediately (needQuery false — the
// threat is outside the optimization horizon, the returned Decision is
// final) or returns the pending table query (needQuery true — the caller
// must evaluate it, e.g. via Table.AllQValuesBatch, and complete the cycle
// with FinishDecide before this Logic decides anything else).
func (l *Logic) BeginDecide(own uav.State, intrPos, intrVel geom.Vec3) (d Decision, q Query, needQuery bool) {
	l.decisions++
	ownVel := own.VelVec()
	h := intrPos.Z - own.Pos.Z
	dh0 := ownVel.Z
	dh1 := intrVel.Z
	tau := effectiveTau(&l.table.cfg, own.Pos, ownVel, intrPos, intrVel, h, dh0, dh1)

	prev := l.advisory
	if tau >= float64(l.table.Horizon()) {
		// No horizontal conflict inside the optimization horizon. A fresh
		// threat stays clear of conflict; an active advisory is maintained
		// until the traffic is genuinely clear — with noisy surveillance
		// the tau estimate can transiently exceed the horizon mid-conflict,
		// and dropping the advisory would hand the aircraft back to its
		// (conflicting) flight plan.
		next := COC
		if prev != COC && !clearOfConflict(own.Pos, ownVel, intrPos, intrVel, l.table.cfg.DMOD) {
			next = prev
		}
		return l.commit(prev, next, tau, h), Query{}, false
	}
	l.pendTau, l.pendH = tau, h
	return Decision{}, Query{Tau: tau, H: h, DH0: dh0, DH1: dh1, RA: prev}, true
}

// FinishDecide completes a cycle begun by BeginDecide from the evaluated
// advisory values (qv, with the quantization error bound returned by the
// evaluation — 0 for exact values). own/intrPos/intrVel must be the
// arguments BeginDecide saw; they feed the clear-of-conflict hysteresis
// and the margin-gate fallback.
func (l *Logic) FinishDecide(qv *[NumAdvisories]float64, bound float64, own uav.State, intrPos, intrVel geom.Vec3, mask SenseMask) Decision {
	prev := l.advisory
	tau, h := l.pendTau, l.pendH
	ownVel := own.VelVec()
	var best Advisory
	var ok bool
	if bound == 0 {
		best, ok = bestAllowed(qv, mask)
	} else {
		best, ok = l.table.bestAllowedGated(qv, bound, mask, tau, h, ownVel.Z, intrVel.Z, prev)
	}
	if !ok {
		best = COC
	}
	if best == COC && prev != COC &&
		!clearOfConflict(own.Pos, ownVel, intrPos, intrVel, l.table.cfg.DMOD) {
		// The table proposes terminating the advisory because the
		// projected miss distance is adequate — but its clear-of-
		// conflict model assumes the aircraft drift, whereas real
		// aircraft resume their (conflicting) flight plans and
		// re-converge. Hold the advisory until the threat is
		// horizontally diverging, as fielded ACAS logic does.
		best = prev
	}
	return l.commit(prev, best, tau, h)
}

// commit installs the next advisory and assembles the Decision with its
// transition bookkeeping (alert/reversal/strengthening counters).
func (l *Logic) commit(prev, next Advisory, tau, h float64) Decision {
	l.advisory = next
	d := Decision{
		Advisory: next,
		Tau:      tau,
		H:        h,
		Alerting: next != COC,
	}
	if prev == COC && next != COC {
		d.NewAlert = true
		l.alerts++
	}
	if prev.Sense() != SenseNone && next.Sense() != SenseNone && prev.Sense() != next.Sense() {
		d.Reversal = true
		l.reversals++
	}
	if next.Strengthened() && !prev.Strengthened() && prev.Sense() == next.Sense() {
		d.Strengthening = true
	}
	return d
}

// Command converts the active advisory into a UAV vertical-rate command.
// The boolean is false for COC (no command; the caller should clear any
// active command).
func (d Decision) Command() (uav.Command, bool) {
	if d.Advisory == COC {
		return uav.Command{}, false
	}
	return uav.Command{
		HasVS:      true,
		TargetVS:   d.Advisory.TargetRate(),
		Strengthen: d.Advisory.Strengthened(),
	}, true
}

// effectiveTau derives the decision tau. The base definition is the
// horizontal time-to-conflict (geom.Tau). With Config.UseVerticalTau, a
// horizontal tau of zero (already inside DMOD and converging) is replaced
// by the time until the vertical separation closes into the NMAC band —
// the revision that removes the slow-closure blind spot.
func effectiveTau(cfg *Config, ownPos, ownVel, intrPos, intrVel geom.Vec3, h, dh0, dh1 float64) float64 {
	tau := geom.Tau(ownPos, ownVel, intrPos, intrVel, cfg.DMOD)
	if !cfg.UseVerticalTau || tau > 0 {
		return tau
	}
	// Horizontally in conflict now. If also vertically inside the NMAC
	// band, the conflict is immediate.
	band := cfg.Cost.NMACVertical
	if h <= band && h >= -band {
		return 0
	}
	// Time for |h| to shrink to the band at the current relative vertical
	// rate; no imminent conflict when vertically diverging.
	rv := dh1 - dh0
	closing := h*rv < 0
	if !closing || rv == 0 {
		return geom.TauUnbounded
	}
	abs := h
	if abs < 0 {
		abs = -abs
	}
	rate := rv
	if rate < 0 {
		rate = -rate
	}
	return (abs - band) / rate
}

// clearOfConflict reports whether the intruder is horizontally diverging
// and outside the conflict radius — the condition for discontinuing an
// active advisory when the tau estimate has left the table's horizon.
func clearOfConflict(ownPos, ownVel, intrPos, intrVel geom.Vec3, dmod float64) bool {
	dp := intrPos.Sub(ownPos).Horizontal()
	r := dp.Norm()
	if r <= dmod {
		return false
	}
	dv := intrVel.Sub(ownVel).Horizontal()
	// Diverging when the range rate is positive (dp . dv > 0).
	return dp.Dot(dv) > 0
}

// CoordinationMask returns the sense restriction an aircraft broadcasting
// advisory a imposes on its peer: the peer must not maneuver in the same
// direction.
func CoordinationMask(a Advisory) SenseMask {
	switch a.Sense() {
	case SenseUp:
		return SenseMask{BanUp: true}
	case SenseDown:
		return SenseMask{BanDown: true}
	default:
		return SenseMask{}
	}
}

// NMAC reports whether two aircraft states constitute a near mid-air
// collision under the standard cylinder (500 ft horizontal, 100 ft
// vertical) — the paper's mid-air collision criterion.
func NMAC(a, b geom.Vec3) bool {
	return a.HorizontalDistanceTo(b) < geom.NMACHorizontal &&
		math.Abs(a.Z-b.Z) < geom.NMACVertical
}
