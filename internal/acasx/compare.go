package acasx

import (
	"fmt"
	"math"

	"acasxval/internal/stats"
)

// PolicyComparison quantifies how two logic tables differ — the measurement
// the Fig. 1 model-revision loop needs: after "manual model revision" the
// developer wants to know where the regenerated logic changed.
type PolicyComparison struct {
	// Samples is the number of compared state points.
	Samples int
	// Agreement is the fraction of points where both tables choose the
	// same advisory.
	Agreement float64
	// SenseAgreement is the fraction where the advisory senses match
	// (treating CL1500/SCL2500 as the same sense).
	SenseAgreement float64
	// MeanAbsQDiff is the mean |Q_a - Q_b| of the chosen actions.
	MeanAbsQDiff float64
	// AlertRateA / AlertRateB are the fractions of points where each table
	// alerts (non-COC choice).
	AlertRateA, AlertRateB float64
}

// ComparePolicies samples n random in-range states (uniform over tau, h and
// rates, from the COC advisory state) and compares the two tables' choices.
// The tables may have different grids; both are queried through their own
// interpolation. Sampling is deterministic under seed.
func ComparePolicies(a, b *Table, n int, seed uint64) (PolicyComparison, error) {
	if n < 1 {
		return PolicyComparison{}, fmt.Errorf("acasx: need n >= 1 samples")
	}
	rng := stats.NewRNG(seed)
	// Sample within the intersection of the two state spaces.
	hMax := math.Min(a.cfg.Grid.HMax, b.cfg.Grid.HMax)
	rateMax := math.Min(a.cfg.Grid.RateMax, b.cfg.Grid.RateMax)
	horizon := math.Min(float64(a.Horizon()), float64(b.Horizon()))

	out := PolicyComparison{Samples: n}
	agree, senseAgree := 0, 0
	var qdiff stats.Accumulator
	alertsA, alertsB := 0, 0
	for i := 0; i < n; i++ {
		tau := rng.Float64() * horizon
		h := (rng.Float64()*2 - 1) * hMax
		dh0 := (rng.Float64()*2 - 1) * rateMax
		dh1 := (rng.Float64()*2 - 1) * rateMax
		advA, _ := a.BestAdvisory(tau, h, dh0, dh1, COC, SenseMask{})
		advB, _ := b.BestAdvisory(tau, h, dh0, dh1, COC, SenseMask{})
		if advA == advB {
			agree++
		}
		if advA.Sense() == advB.Sense() {
			senseAgree++
		}
		if advA != COC {
			alertsA++
		}
		if advB != COC {
			alertsB++
		}
		qa := a.QValue(tau, h, dh0, dh1, COC, advA)
		qb := b.QValue(tau, h, dh0, dh1, COC, advB)
		qdiff.Add(math.Abs(qa - qb))
	}
	out.Agreement = float64(agree) / float64(n)
	out.SenseAgreement = float64(senseAgree) / float64(n)
	out.MeanAbsQDiff = qdiff.Mean()
	out.AlertRateA = float64(alertsA) / float64(n)
	out.AlertRateB = float64(alertsB) / float64(n)
	return out, nil
}

// String implements fmt.Stringer.
func (c PolicyComparison) String() string {
	return fmt.Sprintf("agreement %.3f (sense %.3f) over %d states; alert rate %.3f vs %.3f; mean |dQ| %.1f",
		c.Agreement, c.SenseAgreement, c.Samples, c.AlertRateA, c.AlertRateB, c.MeanAbsQDiff)
}
