package acasx

import (
	"bytes"
	"io"
	"sync"
	"testing"
)

var (
	serBenchOnce  sync.Once
	serBenchTable *Table
	serBenchErr   error
)

func benchSerializeTable(b *testing.B) *Table {
	b.Helper()
	serBenchOnce.Do(func() {
		cfg := CoarseConfig()
		cfg.Workers = 4
		serBenchTable, serBenchErr = BuildTable(cfg)
	})
	if serBenchErr != nil {
		b.Fatal(serBenchErr)
	}
	return serBenchTable
}

// BenchmarkTableWriteTo measures table serialization throughput (the save
// half of the Save/Load round trip). The Q payload is bulk-encoded one
// slice at a time; MB/s is the figure to watch across snapshots.
func BenchmarkTableWriteTo(b *testing.B) {
	table := benchSerializeTable(b)
	n, err := table.WriteTo(io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := table.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableReadTable measures deserialization throughput (the load
// half), including CRC verification and structural validation.
func BenchmarkTableReadTable(b *testing.B) {
	table := benchSerializeTable(b)
	var buf bytes.Buffer
	if _, err := table.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadTable(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
