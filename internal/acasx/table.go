package acasx

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"acasxval/internal/interp"
)

// Table is the generated logic table: for every tau slice k = 0..Horizon,
// the action values Q_k(h, dh0, dh1, ra, a). The table is the product
// artifact of the model-based optimization process — what the paper calls
// the "Logic Table" output of Fig. 1.
type Table struct {
	cfg Config
	// q[k] has stateSize*NumAdvisories entries: Q values for slice k,
	// indexed by (action-major) a*stateSize + stateIndex(c, ra).
	q [][]float64
	// grid spans (h, dh0, dh1); kept for online interpolation.
	grid     *interp.Grid
	contSize int
	// Quantized backend (nil when disabled): per-slice affine-coded int16
	// Q values in vertex-major, advisory-contiguous, tau-interleaved
	// order, with the per-slice codec and error bound alongside. See
	// quantized.go.
	qz           []int16
	qscale, qoff []float64
	qerr         []float64
	// fallbacks counts margin-gate fallbacks to the exact slices.
	fallbacks atomic.Uint64
	// stats
	buildTime  time.Duration
	sweepCount int
}

// BuildTable runs the offline optimization: backward induction over the
// tau-indexed finite-horizon MDP. Cost: O(Horizon x states x actions x 9
// sigma outcomes x 8 interpolation corners). With Config.Workers > 1 the
// per-slice sweeps are parallelized over states; the result is identical to
// the serial solve.
//
// The successor projection (h, dh0, dh1, a) -> grid vertex weights does not
// depend on tau, so by default it is computed once up front and every sweep
// reduces to a sparse gather/dot-product over the previous slice
// (Config.LegacySweep re-enables the original per-slice projection; the
// resulting tables are bit-identical either way).
func BuildTable(cfg Config) (*Table, error) {
	start := time.Now()
	m, err := newModel(cfg)
	if err != nil {
		return nil, err
	}
	horizon := cfg.Grid.Horizon
	t := &Table{
		cfg:      cfg,
		q:        make([][]float64, horizon+1),
		grid:     m.grid,
		contSize: m.contSize,
	}

	// Slice 0: terminal values, identical for every action.
	v := m.terminalValues()
	q0 := make([]float64, m.stateSize*NumAdvisories)
	for a := 0; a < NumAdvisories; a++ {
		copy(q0[a*m.stateSize:(a+1)*m.stateSize], v)
	}
	t.q[0] = q0

	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > runtime.NumCPU() {
		workers = runtime.NumCPU()
	}

	var tr *transitions
	if !cfg.LegacySweep {
		tr = m.buildTransitions(workers)
	}

	prev := v
	for k := 1; k <= horizon; k++ {
		qk := make([]float64, m.stateSize*NumAdvisories)
		next := make([]float64, m.stateSize)
		if tr != nil {
			sweepSliceCached(m, tr, prev, qk, next, workers)
		} else {
			sweepSlice(m, prev, qk, next, workers)
		}
		t.q[k] = qk
		prev = next
		t.sweepCount++
	}
	t.buildTime = time.Since(start)
	if cfg.Quantized {
		if err := t.Quantize(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// parallelRanges splits [0, n) into worker chunks and runs run on each.
func parallelRanges(n, workers int, run func(lo, hi int)) {
	if workers <= 1 {
		run(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			run(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// sweepSlice fills qk (Q values) and next (V values) for one tau slice from
// the previous slice's V values, re-projecting every sigma-outcome successor
// onto the grid. This is the original (pre-cache) sweep, kept behind
// Config.LegacySweep so the equivalence test can prove the cached sweep
// reproduces it bit for bit.
func sweepSlice(m *model, prev, qk, next []float64, workers int) {
	run := func(lo, hi int) {
		var ws [16]interp.VertexWeight
		var ptBuf [3]float64
		for c := lo; c < hi; c++ {
			pt := m.grid.PointAppend(ptBuf[:0], c)
			h, dh0, dh1 := pt[0], pt[1], pt[2]
			// The expected next value depends only on the chosen action,
			// not on the current advisory state; compute once per action.
			var ev [NumAdvisories]float64
			for a := 0; a < NumAdvisories; a++ {
				ev[a] = m.expectedNextValue(prev, h, dh0, dh1, Advisory(a), ws[:0])
			}
			fillSliceState(m, c, &ev, qk, next)
		}
	}
	parallelRanges(m.contSize, workers, run)
}

// sweepSliceCached is sweepSlice with the successor projections read from
// the precomputed transition table: a pure gather/dot-product per (state,
// action), no geometry or interpolation work per slice.
func sweepSliceCached(m *model, tr *transitions, prev, qk, next []float64, workers int) {
	run := func(lo, hi int) {
		for c := lo; c < hi; c++ {
			var ev [NumAdvisories]float64
			g := c * NumAdvisories * numSigmaOutcomes
			for a := 0; a < NumAdvisories; a++ {
				base := a * m.contSize
				total := 0.0
				for o := 0; o < numSigmaOutcomes; o++ {
					s := g * maxCorners
					e := s + int(tr.counts[g])
					g++
					v := 0.0
					for i := s; i < e; i++ {
						v += tr.weights[i] * prev[base+int(tr.flats[i])]
					}
					total += tr.outcomeW[o] * v
				}
				ev[a] = total
			}
			fillSliceState(m, c, &ev, qk, next)
		}
	}
	parallelRanges(m.contSize, workers, run)
}

// fillSliceState writes the Q and V entries of one continuous vertex from
// the per-action expected next values.
func fillSliceState(m *model, c int, ev *[NumAdvisories]float64, qk, next []float64) {
	for ra := 0; ra < NumAdvisories; ra++ {
		s := m.stateIndex(c, Advisory(ra))
		best := math.Inf(-1)
		for a := 0; a < NumAdvisories; a++ {
			q := m.eventCost(Advisory(ra), Advisory(a)) + ev[a]
			qk[a*m.stateSize+s] = q
			if q > best {
				best = q
			}
		}
		next[s] = best
	}
}

// Config returns the configuration the table was built with.
func (t *Table) Config() Config { return t.cfg }

// Horizon returns the number of tau slices (excluding slice 0).
func (t *Table) Horizon() int { return len(t.q) - 1 }

// BuildTime returns how long the offline solve took (zero for loaded
// tables).
func (t *Table) BuildTime() time.Duration { return t.buildTime }

// NumEntries returns the total number of stored Q values.
func (t *Table) NumEntries() int {
	total := 0
	for _, slice := range t.q {
		total += len(slice)
	}
	return total
}

// stateSize returns the per-slice V-table size.
func (t *Table) stateSize() int { return t.contSize * NumAdvisories }

// clampTau maps a continuous tau to the lower bracketing slice index and
// the blend fraction towards the next slice, saturating at [0, Horizon].
func (t *Table) clampTau(tau float64) (lo int, frac float64) {
	if tau < 0 {
		tau = 0
	}
	hmax := float64(t.Horizon())
	if tau >= hmax {
		tau = hmax
	}
	lo = int(tau)
	return lo, tau - float64(lo)
}

// QValue interpolates the action value at continuous tau: linear blending
// between the bracketing slices (clamped to the horizon).
//
// This is the per-action reference path: one query computes the vertex
// weights and reads a single (ra, a) pair. Scans over the whole action set
// should use AllQValues/BestAdvisoryFast, which share one weight
// computation across every advisory and both bracketing slices; the golden
// equivalence test asserts both paths agree bit for bit.
func (t *Table) QValue(tau, h, dh0, dh1 float64, ra, a Advisory) float64 {
	if !ra.Valid() || !a.Valid() {
		return math.Inf(-1)
	}
	var buf [16]interp.VertexWeight
	pt := [3]float64{h, dh0, dh1}
	ws, _ := t.grid.WeightsAppend(buf[:0], pt[:])
	lo, frac := t.clampTau(tau)
	base := int(a)*t.stateSize() + int(ra)*t.contSize
	v := dotGather(ws, t.q[lo], base)
	if frac > 0 && lo+1 <= t.Horizon() {
		v = v*(1-frac) + frac*dotGather(ws, t.q[lo+1], base)
	}
	return v
}

// dotGather is the interpolation dot product of ws against table[base+...].
func dotGather(ws []interp.VertexWeight, table []float64, base int) float64 {
	v := 0.0
	for _, vw := range ws {
		v += vw.Weight * table[base+vw.Flat]
	}
	return v
}

// AllQValues fills dst with the interpolated Q value of every advisory at
// the given state. The vertex weights depend only on (h, dh0, dh1), so they
// are computed once and reused across all NumAdvisories actions and both
// bracketing tau slices — one weight computation instead of the
// 2 x NumAdvisories a per-action scan would perform — and each slice is
// read in action-major order, matching the Q layout for cache locality.
// The path allocates nothing; invalid ra fills dst with -Inf.
//
// Bit-identical to calling QValue per advisory: the weights are
// deterministic in the query point and the dot products accumulate in the
// same order.
func (t *Table) AllQValues(dst *[NumAdvisories]float64, tau, h, dh0, dh1 float64, ra Advisory) {
	if !ra.Valid() {
		for a := range dst {
			dst[a] = math.Inf(-1)
		}
		return
	}
	var buf [16]interp.VertexWeight
	pt := [3]float64{h, dh0, dh1}
	ws, _ := t.grid.WeightsAppend(buf[:0], pt[:])
	lo, frac := t.clampTau(tau)
	t.gatherExact(dst, ws, lo, frac, ra)
}

// AllQValuesFast fills dst like AllQValues but serves the query from the
// quantized int16 backend when one is installed, returning the worst-case
// absolute error of the returned values versus the exact path (0 on the
// exact path). Callers deciding an advisory from quantized values must
// apply the margin gate (bestAllowedGated or the fused gate in
// multiCycle) so the argmax stays identical to the exact path.
func (t *Table) AllQValuesFast(dst *[NumAdvisories]float64, tau, h, dh0, dh1 float64, ra Advisory) float64 {
	if t.qz == nil {
		t.AllQValues(dst, tau, h, dh0, dh1, ra)
		return 0
	}
	if !ra.Valid() {
		for a := range dst {
			dst[a] = math.Inf(-1)
		}
		return 0
	}
	var buf [16]interp.VertexWeight
	pt := [3]float64{h, dh0, dh1}
	ws, _ := t.grid.WeightsAppend(buf[:0], pt[:])
	lo, frac := t.clampTau(tau)
	return t.gatherQuant(dst, ws, lo, frac, ra)
}

// BestAdvisoryFast returns the advisory maximizing the interpolated Q value
// at the given state, considering only advisories allowed by the mask. It
// is the allocation-free shared-weight scan the online executive uses on
// every decision cycle; BestAdvisory delegates here. The boolean is false
// when the mask bans every action (cannot happen with a default mask, which
// always allows COC) or ra is invalid. On a quantized table the scan is
// served from the int16 backend under the margin gate, so the returned
// advisory is identical to the exact path's in every case.
func (t *Table) BestAdvisoryFast(tau, h, dh0, dh1 float64, ra Advisory, mask SenseMask) (Advisory, bool) {
	var q [NumAdvisories]float64
	bound := t.AllQValuesFast(&q, tau, h, dh0, dh1, ra)
	if bound == 0 {
		return bestAllowed(&q, mask)
	}
	return t.bestAllowedGated(&q, bound, mask, tau, h, dh0, dh1, ra)
}

// BestAdvisory returns the advisory maximizing the interpolated Q value at
// the given state, considering only advisories allowed by the mask.
func (t *Table) BestAdvisory(tau, h, dh0, dh1 float64, ra Advisory, mask SenseMask) (Advisory, bool) {
	return t.BestAdvisoryFast(tau, h, dh0, dh1, ra, mask)
}

// Value returns max_a Q at the state (the optimal state value).
func (t *Table) Value(tau, h, dh0, dh1 float64, ra Advisory) float64 {
	var q [NumAdvisories]float64
	t.AllQValues(&q, tau, h, dh0, dh1, ra)
	best := math.Inf(-1)
	for a := 0; a < NumAdvisories; a++ {
		if q[a] > best {
			best = q[a]
		}
	}
	return best
}

// validateLoaded re-derives internal geometry after deserialization.
func (t *Table) validateLoaded() error {
	m, err := newModel(t.cfg)
	if err != nil {
		return fmt.Errorf("acasx: loaded table has invalid config: %w", err)
	}
	if len(t.q) != t.cfg.Grid.Horizon+1 {
		return fmt.Errorf("acasx: loaded table has %d slices, config wants %d", len(t.q), t.cfg.Grid.Horizon+1)
	}
	want := m.stateSize * NumAdvisories
	for k, slice := range t.q {
		if len(slice) != want {
			return fmt.Errorf("acasx: slice %d has %d entries, want %d", k, len(slice), want)
		}
	}
	t.grid = m.grid
	t.contSize = m.contSize
	if t.cfg.Quantized && t.qz == nil {
		// The file stores the exact slices; the int16 backend is a pure
		// function of them, so re-deriving it here round-trips the
		// quantized table losslessly.
		return t.Quantize()
	}
	return nil
}
