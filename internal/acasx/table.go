package acasx

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"acasxval/internal/interp"
)

// Table is the generated logic table: for every tau slice k = 0..Horizon,
// the action values Q_k(h, dh0, dh1, ra, a). The table is the product
// artifact of the model-based optimization process — what the paper calls
// the "Logic Table" output of Fig. 1.
type Table struct {
	cfg Config
	// q[k] has stateSize*NumAdvisories entries: Q values for slice k,
	// indexed by (action-major) a*stateSize + stateIndex(c, ra).
	q [][]float64
	// grid spans (h, dh0, dh1); kept for online interpolation.
	grid     *interp.Grid
	contSize int
	// stats
	buildTime  time.Duration
	sweepCount int
}

// BuildTable runs the offline optimization: backward induction over the
// tau-indexed finite-horizon MDP. Cost: O(Horizon x states x actions x 9
// sigma outcomes x 8 interpolation corners). With Config.Workers > 1 the
// per-slice sweeps are parallelized over states; the result is identical to
// the serial solve.
func BuildTable(cfg Config) (*Table, error) {
	start := time.Now()
	m, err := newModel(cfg)
	if err != nil {
		return nil, err
	}
	horizon := cfg.Grid.Horizon
	t := &Table{
		cfg:      cfg,
		q:        make([][]float64, horizon+1),
		grid:     m.grid,
		contSize: m.contSize,
	}

	// Slice 0: terminal values, identical for every action.
	v := m.terminalValues()
	q0 := make([]float64, m.stateSize*NumAdvisories)
	for a := 0; a < NumAdvisories; a++ {
		copy(q0[a*m.stateSize:(a+1)*m.stateSize], v)
	}
	t.q[0] = q0

	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > runtime.NumCPU() {
		workers = runtime.NumCPU()
	}

	prev := v
	for k := 1; k <= horizon; k++ {
		qk := make([]float64, m.stateSize*NumAdvisories)
		next := make([]float64, m.stateSize)
		sweepSlice(m, prev, qk, next, workers)
		t.q[k] = qk
		prev = next
		t.sweepCount++
	}
	t.buildTime = time.Since(start)
	return t, nil
}

// sweepSlice fills qk (Q values) and next (V values) for one tau slice from
// the previous slice's V values.
func sweepSlice(m *model, prev, qk, next []float64, workers int) {
	n := m.contSize
	run := func(lo, hi int) {
		var ws [16]interp.VertexWeight
		var pt []float64
		for c := lo; c < hi; c++ {
			pt = m.grid.Point(c)
			h, dh0, dh1 := pt[0], pt[1], pt[2]
			// The expected next value depends only on the chosen action,
			// not on the current advisory state; compute once per action.
			var ev [NumAdvisories]float64
			for a := 0; a < NumAdvisories; a++ {
				ev[a] = m.expectedNextValue(prev, h, dh0, dh1, Advisory(a), ws[:0])
			}
			for ra := 0; ra < NumAdvisories; ra++ {
				s := m.stateIndex(c, Advisory(ra))
				best := math.Inf(-1)
				for a := 0; a < NumAdvisories; a++ {
					q := m.eventCost(Advisory(ra), Advisory(a)) + ev[a]
					qk[a*m.stateSize+s] = q
					if q > best {
						best = q
					}
				}
				next[s] = best
			}
		}
	}
	if workers <= 1 {
		run(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			run(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Config returns the configuration the table was built with.
func (t *Table) Config() Config { return t.cfg }

// Horizon returns the number of tau slices (excluding slice 0).
func (t *Table) Horizon() int { return len(t.q) - 1 }

// BuildTime returns how long the offline solve took (zero for loaded
// tables).
func (t *Table) BuildTime() time.Duration { return t.buildTime }

// NumEntries returns the total number of stored Q values.
func (t *Table) NumEntries() int {
	total := 0
	for _, slice := range t.q {
		total += len(slice)
	}
	return total
}

// stateSize returns the per-slice V-table size.
func (t *Table) stateSize() int { return t.contSize * NumAdvisories }

// qValue interpolates Q_k(h, dh0, dh1, ra, a) at integer slice k.
func (t *Table) qValue(k int, h, dh0, dh1 float64, ra, a Advisory) float64 {
	var buf [16]interp.VertexWeight
	pt := [3]float64{h, dh0, dh1}
	ws, _ := t.grid.WeightsAppend(buf[:0], pt[:])
	base := int(a)*t.stateSize() + int(ra)*t.contSize
	v := 0.0
	for _, vw := range ws {
		v += vw.Weight * t.q[k][base+vw.Flat]
	}
	return v
}

// QValue interpolates the action value at continuous tau: linear blending
// between the bracketing slices (clamped to the horizon).
func (t *Table) QValue(tau, h, dh0, dh1 float64, ra, a Advisory) float64 {
	if !ra.Valid() || !a.Valid() {
		return math.Inf(-1)
	}
	if tau < 0 {
		tau = 0
	}
	hmax := float64(t.Horizon())
	if tau >= hmax {
		tau = hmax
	}
	lo := int(tau)
	frac := tau - float64(lo)
	v := t.qValue(lo, h, dh0, dh1, ra, a)
	if frac > 0 && lo+1 <= t.Horizon() {
		v = v*(1-frac) + frac*t.qValue(lo+1, h, dh0, dh1, ra, a)
	}
	return v
}

// BestAdvisory returns the advisory maximizing the interpolated Q value at
// the given state, considering only advisories allowed by the mask.
// The boolean is false when the mask bans every action (cannot happen with
// a default mask, which always allows COC).
func (t *Table) BestAdvisory(tau, h, dh0, dh1 float64, ra Advisory, mask SenseMask) (Advisory, bool) {
	best := COC
	bestQ := math.Inf(-1)
	found := false
	for _, a := range Advisories() {
		if !mask.Allows(a) {
			continue
		}
		q := t.QValue(tau, h, dh0, dh1, ra, a)
		if q > bestQ {
			bestQ = q
			best = a
			found = true
		}
	}
	return best, found
}

// Value returns max_a Q at the state (the optimal state value).
func (t *Table) Value(tau, h, dh0, dh1 float64, ra Advisory) float64 {
	best := math.Inf(-1)
	for _, a := range Advisories() {
		if q := t.QValue(tau, h, dh0, dh1, ra, a); q > best {
			best = q
		}
	}
	return best
}

// validateLoaded re-derives internal geometry after deserialization.
func (t *Table) validateLoaded() error {
	m, err := newModel(t.cfg)
	if err != nil {
		return fmt.Errorf("acasx: loaded table has invalid config: %w", err)
	}
	if len(t.q) != t.cfg.Grid.Horizon+1 {
		return fmt.Errorf("acasx: loaded table has %d slices, config wants %d", len(t.q), t.cfg.Grid.Horizon+1)
	}
	want := m.stateSize * NumAdvisories
	for k, slice := range t.q {
		if len(slice) != want {
			return fmt.Errorf("acasx: slice %d has %d entries, want %d", k, len(slice), want)
		}
	}
	t.grid = m.grid
	t.contSize = m.contSize
	return nil
}
