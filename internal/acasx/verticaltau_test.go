package acasx

import (
	"sync"
	"testing"

	"acasxval/internal/geom"
	"acasxval/internal/uav"
)

var (
	vtOnce  sync.Once
	vtTable *Table
	vtErr   error
)

// getVerticalTauTable builds a coarse table with the tail-approach revision
// enabled (large DMOD + vertical-tau fallback).
func getVerticalTauTable(t *testing.T) *Table {
	t.Helper()
	vtOnce.Do(func() {
		cfg := CoarseConfig()
		cfg.Workers = 4
		cfg.DMOD = 500
		cfg.UseVerticalTau = true
		vtTable, vtErr = BuildTable(cfg)
	})
	if vtErr != nil {
		t.Fatal(vtErr)
	}
	return vtTable
}

func TestEffectiveTauDefaultMatchesHorizontal(t *testing.T) {
	cfg := DefaultConfig()
	own := geom.Vec3{}
	ownVel := geom.Vec3{X: 50}
	intr := geom.Vec3{X: 2000}
	intrVel := geom.Vec3{X: -50}
	want := geom.Tau(own, ownVel, intr, intrVel, cfg.DMOD)
	got := effectiveTau(&cfg, own, ownVel, intr, intrVel, 100, 0, 0)
	if got != want {
		t.Errorf("effectiveTau = %v, want horizontal tau %v", got, want)
	}
}

func TestEffectiveTauVerticalFallback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DMOD = 500
	cfg.UseVerticalTau = true
	own := geom.Vec3{}
	ownVel := geom.Vec3{X: 50}
	// Intruder 200 m ahead (inside DMOD) converging slowly: horizontal tau
	// would be 0.
	intr := geom.Vec3{X: 200, Z: 100}
	intrVel := geom.Vec3{X: -51 + 100} // slight closure

	// Vertically converging at 5 m/s from h=100: tau_v = (100-30.48)/5.
	got := effectiveTau(&cfg, own, ownVel, intr, intrVel, 100, 2.5, -2.5)
	want := (100 - cfg.Cost.NMACVertical) / 5
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("vertical tau = %v, want %v", got, want)
	}

	// Inside the NMAC band: immediate conflict.
	if got := effectiveTau(&cfg, own, ownVel, intr, intrVel, 10, 2.5, -2.5); got != 0 {
		t.Errorf("inside-band tau = %v, want 0", got)
	}

	// Vertically diverging: unbounded.
	if got := effectiveTau(&cfg, own, ownVel, intr, intrVel, 100, -2.5, 2.5); got != geom.TauUnbounded {
		t.Errorf("diverging tau = %v, want unbounded", got)
	}

	// Zero relative vertical rate: unbounded.
	if got := effectiveTau(&cfg, own, ownVel, intr, intrVel, 100, 1, 1); got != geom.TauUnbounded {
		t.Errorf("zero-rate tau = %v, want unbounded", got)
	}

	// Negative h, converging upward.
	got = effectiveTau(&cfg, own, ownVel, intr, intrVel, -100, -2.5, 2.5)
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("negative-h vertical tau = %v, want %v", got, want)
	}
}

// TestVerticalTauRevisionAlertsOnTailGeometry: the revised executive must
// alert in the slow-closure geometry the default system is blind to.
func TestVerticalTauRevisionAlertsOnTailGeometry(t *testing.T) {
	revised := getVerticalTauTable(t)
	original := getCoarseTable(t)

	own := uav.State{Vel: geom.Velocity{Gs: 40, Vs: -2.5}}
	// Intruder 150 m behind, overtaking at 4 m/s, 45 m below and climbing:
	// constant-rate projection reaches the NMAC band in ~3 s. (The
	// vertical-tau fallback by construction projects exactly onto the band
	// edge, so alerting concentrates at small vertical tau.)
	intrPos := geom.Vec3{X: -150, Z: -45}
	intrVel := geom.Vec3{X: 44, Z: 2.5}

	origLogic := NewLogic(original)
	dOrig := origLogic.Decide(own, intrPos, intrVel, SenseMask{})
	if dOrig.Alerting {
		t.Fatalf("default system alerted in slow-closure geometry (tau=%v) — blind spot missing", dOrig.Tau)
	}

	revLogic := NewLogic(revised)
	d := revLogic.Decide(own, intrPos, intrVel, SenseMask{})
	if !d.Alerting {
		t.Fatalf("revised system did not alert (tau=%v, h=%v)", d.Tau, d.H)
	}
	if d.Advisory.Sense() != SenseUp {
		t.Errorf("revised advisory %v; intruder below climbing, expected climb sense", d.Advisory)
	}
}

func TestVerticalTauSerializationRoundTrip(t *testing.T) {
	cfg := tinyConfig()
	cfg.UseVerticalTau = true
	cfg.DMOD = 500
	table, err := BuildTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/vt.acxt"
	if err := table.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Config().UseVerticalTau {
		t.Error("UseVerticalTau flag lost in serialization")
	}
	if loaded.Config().DMOD != 500 {
		t.Error("DMOD lost in serialization")
	}
}
