package acasx

import (
	"strings"
	"testing"
)

func TestRenderPolicySlice(t *testing.T) {
	table := getCoarseTable(t)
	out := table.RenderPolicySlice(0, 0, 15)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 2 header lines + 15 rows + legend.
	if len(lines) != 18 {
		t.Fatalf("%d lines, want 18:\n%s", len(lines), out)
	}
	// The co-altitude imminent-threat band must contain maneuvers.
	if !strings.ContainsAny(out, "^vCD") {
		t.Errorf("policy slice shows no advisories:\n%s", out)
	}
	// Far-altitude rows should be mostly COC: check the topmost row body.
	top := lines[2]
	body := top[strings.IndexByte(top, '|')+1:]
	dots := strings.Count(body, ".")
	if dots < len(body)*3/4 {
		t.Errorf("top row (safe altitude) has too few COC cells: %q", body)
	}
	// Degenerate row count falls back to the default.
	if out := table.RenderPolicySlice(0, 0, 1); len(strings.Split(out, "\n")) < 10 {
		t.Error("row fallback failed")
	}
}

func TestBestAdvisoryNearestAgreesOnVertices(t *testing.T) {
	table := getCoarseTable(t)
	// On exact grid vertices and integer taus, nearest and interpolated
	// lookups must agree.
	for _, h := range table.grid.Axis(0) {
		for _, tau := range []float64{0, 5, 10, 20} {
			ni, ok1 := table.BestAdvisoryNearest(tau, h, 0, 0, COC, SenseMask{})
			ii, ok2 := table.BestAdvisory(tau, h, 0, 0, COC, SenseMask{})
			if !ok1 || !ok2 {
				t.Fatal("lookup failed")
			}
			// Q-value ties can differ in argmax; compare the Q values of
			// the two choices instead of the identities.
			qn := table.QValue(tau, h, 0, 0, COC, ni)
			qi := table.QValue(tau, h, 0, 0, COC, ii)
			if qn < qi-1e-9 {
				t.Errorf("h=%v tau=%v: nearest pick %v strictly worse than interpolated %v", h, tau, ni, ii)
			}
		}
	}
}

func TestBestAdvisoryNearestMask(t *testing.T) {
	table := getCoarseTable(t)
	adv, ok := table.BestAdvisoryNearest(10, 0, 0, 0, COC, SenseMask{BanUp: true, BanDown: true})
	if !ok || adv != COC {
		t.Errorf("fully-masked nearest lookup = %v (ok=%v)", adv, ok)
	}
	if _, ok := table.BestAdvisoryNearest(10, 0, 0, 0, Advisory(77), SenseMask{}); ok {
		t.Error("invalid advisory state accepted")
	}
	// Clamping: negative and huge taus.
	if a, ok := table.BestAdvisoryNearest(-3, 0, 0, 0, COC, SenseMask{}); !ok || !a.Valid() {
		t.Error("negative tau lookup failed")
	}
	if a, ok := table.BestAdvisoryNearest(1e9, 0, 0, 0, COC, SenseMask{}); !ok || !a.Valid() {
		t.Error("huge tau lookup failed")
	}
}
