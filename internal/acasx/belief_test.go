package acasx

import (
	"testing"

	"acasxval/internal/geom"
	"acasxval/internal/uav"
)

func TestBeliefSigmasValidation(t *testing.T) {
	if err := DefaultBeliefSigmas().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (BeliefSigmas{H: -1}).Validate(); err == nil {
		t.Error("negative sigma accepted")
	}
	if _, err := NewBeliefLogic(getCoarseTable(t), BeliefSigmas{Rate: -1}); err == nil {
		t.Error("NewBeliefLogic accepted bad sigmas")
	}
}

// TestZeroSigmaBeliefMatchesPointLogic: with a collapsed belief the QMDP
// executive must make exactly the decisions of the point-estimate logic.
func TestZeroSigmaBeliefMatchesPointLogic(t *testing.T) {
	table := getCoarseTable(t)
	point := NewLogic(table)
	belief, err := NewBeliefLogic(table, BeliefSigmas{})
	if err != nil {
		t.Fatal(err)
	}
	own := uav.State{Vel: geom.Velocity{Gs: 50}}
	cases := []struct {
		pos geom.Vec3
		vel geom.Vec3
	}{
		{geom.Vec3{X: 1200, Z: 0}, geom.Vec3{X: -50}},
		{geom.Vec3{X: 900, Z: 60}, geom.Vec3{X: -40, Z: -2}},
		{geom.Vec3{X: 700, Z: -80}, geom.Vec3{X: -45, Z: 3}},
		{geom.Vec3{X: 5000, Z: 0}, geom.Vec3{X: -50}},
		{geom.Vec3{X: 400, Z: 10}, geom.Vec3{X: -30, Z: 1}},
	}
	for i, c := range cases {
		dp := point.Decide(own, c.pos, c.vel, SenseMask{})
		db := belief.Decide(own, c.pos, c.vel, SenseMask{})
		if dp.Advisory != db.Advisory {
			t.Errorf("case %d: point %v vs zero-sigma belief %v", i, dp.Advisory, db.Advisory)
		}
	}
}

// TestBeliefRespectsGeometry: large intruder-above threat should still pick
// a descend sense under belief weighting.
func TestBeliefRespectsGeometry(t *testing.T) {
	table := getCoarseTable(t)
	belief, err := NewBeliefLogic(table, DefaultBeliefSigmas())
	if err != nil {
		t.Fatal(err)
	}
	own := uav.State{Vel: geom.Velocity{Gs: 50}}
	d := belief.Decide(own, geom.Vec3{X: 1000, Z: 90}, geom.Vec3{X: -50}, SenseMask{})
	if d.Advisory.Sense() == SenseUp {
		t.Errorf("belief logic climbs toward an intruder 90 m above (%v)", d.Advisory)
	}
}

func TestBeliefRespectsMask(t *testing.T) {
	table := getCoarseTable(t)
	belief, err := NewBeliefLogic(table, DefaultBeliefSigmas())
	if err != nil {
		t.Fatal(err)
	}
	own := uav.State{Vel: geom.Velocity{Gs: 50}}
	d := belief.Decide(own, geom.Vec3{X: 1000, Z: 0}, geom.Vec3{X: -50},
		SenseMask{BanUp: true, BanDown: true})
	if d.Advisory != COC {
		t.Errorf("fully-masked belief decision = %v", d.Advisory)
	}
}

func TestBeliefLifecycle(t *testing.T) {
	table := getCoarseTable(t)
	belief, err := NewBeliefLogic(table, DefaultBeliefSigmas())
	if err != nil {
		t.Fatal(err)
	}
	own := uav.State{Vel: geom.Velocity{Gs: 50}}
	d := belief.Decide(own, geom.Vec3{X: 1100, Z: 0}, geom.Vec3{X: -50}, SenseMask{})
	if !d.Alerting || !d.NewAlert {
		t.Fatalf("imminent threat not alerted: %+v", d)
	}
	if belief.Alerts() != 1 {
		t.Errorf("alerts = %d", belief.Alerts())
	}
	// Advisory is held while still converging even if the gap opens.
	d2 := belief.Decide(own, geom.Vec3{X: 600, Z: 200}, geom.Vec3{X: -50}, SenseMask{})
	if !d2.Alerting {
		t.Error("advisory dropped while converging")
	}
	belief.Reset()
	if belief.Advisory() != COC || belief.Alerts() != 0 {
		t.Error("reset incomplete")
	}
	// Diverging traffic: clear.
	d3 := belief.Decide(own, geom.Vec3{X: -2000, Z: 0}, geom.Vec3{X: -60}, SenseMask{})
	if d3.Alerting {
		t.Error("diverging traffic alerted")
	}
}

func TestComparePoliciesIdentity(t *testing.T) {
	table := getCoarseTable(t)
	cmp, err := ComparePolicies(table, table, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Agreement != 1 || cmp.SenseAgreement != 1 {
		t.Errorf("self-comparison agreement = %v/%v, want 1/1", cmp.Agreement, cmp.SenseAgreement)
	}
	if cmp.MeanAbsQDiff != 0 {
		t.Errorf("self-comparison |dQ| = %v, want 0", cmp.MeanAbsQDiff)
	}
	if cmp.AlertRateA != cmp.AlertRateB {
		t.Error("self-comparison alert rates differ")
	}
	if cmp.String() == "" {
		t.Error("empty comparison string")
	}
}

func TestComparePoliciesDifferentCosts(t *testing.T) {
	a := getCoarseTable(t)
	// A revised model with a much larger alert cost must alert less.
	cfg := CoarseConfig()
	cfg.Cost.NewAlert = 2000
	cfg.Cost.ActivePerStep = 200
	cfg.Workers = 4
	b, err := BuildTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := ComparePolicies(a, b, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Agreement >= 1 {
		t.Error("different cost models produced identical policies")
	}
	if cmp.AlertRateB >= cmp.AlertRateA {
		t.Errorf("expensive alerts should reduce alert rate: %v vs %v", cmp.AlertRateB, cmp.AlertRateA)
	}
}

func TestComparePoliciesErrors(t *testing.T) {
	table := getCoarseTable(t)
	if _, err := ComparePolicies(table, table, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
}
