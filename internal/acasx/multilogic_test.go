package acasx

import (
	"math"
	"testing"

	"acasxval/internal/geom"
	"acasxval/internal/uav"
)

// multiTestOwn is a level ownship heading +X used by the fusion tests.
func multiTestOwn() uav.State {
	return uav.State{
		Pos: geom.Vec3{X: 0, Y: 0, Z: 0},
		Vel: geom.Velocity{Gs: 45, Psi: 0, Vs: 0},
	}
}

// headOnTrack returns an intruder track closing head-on from range r with
// vertical offset z and vertical speed vs.
func headOnTrack(r, z, vs float64) geom.Track {
	return geom.Track{
		Pos: geom.Vec3{X: r, Y: 0, Z: z},
		Vel: geom.Vec3{X: -45, Y: 0, Z: vs},
	}
}

// TestDecideMultiSingleTrackMatchesDecide: a one-track DecideMulti must be
// bit-identical to the pairwise Decide, decision by decision, including the
// internal advisory/alert state evolution.
func TestDecideMultiSingleTrackMatchesDecide(t *testing.T) {
	table := getCoarseTable(t)
	pair := NewLogic(table)
	multi := NewLogic(table)
	own := multiTestOwn()
	for step := 0; step < 40; step++ {
		r := 1800 - 45*2*float64(step) // closing head-on at 90 m/s
		tr := headOnTrack(r, 20, -1)
		want := pair.Decide(own, tr.Pos, tr.Vel, SenseMask{})
		got := multi.DecideMulti(own, []geom.Track{tr}, SenseMask{})
		if got != want {
			t.Fatalf("step %d: DecideMulti %+v != Decide %+v", step, got, want)
		}
	}
	if pair.Alerts() != multi.Alerts() || pair.Advisory() != multi.Advisory() {
		t.Fatalf("state diverged: alerts %d/%d advisory %v/%v",
			pair.Alerts(), multi.Alerts(), pair.Advisory(), multi.Advisory())
	}
}

// TestBeliefDecideMultiSingleTrackMatchesDecide mirrors the equivalence for
// the QMDP executive.
func TestBeliefDecideMultiSingleTrackMatchesDecide(t *testing.T) {
	table := getCoarseTable(t)
	pair, err := NewBeliefLogic(table, DefaultBeliefSigmas())
	if err != nil {
		t.Fatal(err)
	}
	multi, err := NewBeliefLogic(table, DefaultBeliefSigmas())
	if err != nil {
		t.Fatal(err)
	}
	own := multiTestOwn()
	for step := 0; step < 30; step++ {
		r := 1600 - 45*2*float64(step)
		tr := headOnTrack(r, -15, 1)
		want := pair.Decide(own, tr.Pos, tr.Vel, SenseMask{})
		got := multi.DecideMulti(own, []geom.Track{tr}, SenseMask{})
		if got != want {
			t.Fatalf("step %d: DecideMulti %+v != Decide %+v", step, got, want)
		}
	}
}

// TestDecideMultiWorstCaseFusion: with two threats inside the horizon the
// fused choice must be the maximin advisory — argmax over actions of the
// minimum per-threat Q value.
func TestDecideMultiWorstCaseFusion(t *testing.T) {
	table := getCoarseTable(t)
	own := multiTestOwn()
	// A vertical sandwich: one threat just above and descending, one just
	// below and climbing, both close enough to be inside the horizon.
	tracks := []geom.Track{
		headOnTrack(700, 25, -2),
		headOnTrack(650, -25, 2),
	}

	// Expected fusion, computed from the public per-threat queries.
	var fused [NumAdvisories]float64
	for a := range fused {
		fused[a] = math.Inf(1)
	}
	ownVel := own.VelVec()
	threats := 0
	for _, tr := range tracks {
		h := tr.Pos.Z - own.Pos.Z
		tau := effectiveTau(&table.cfg, own.Pos, ownVel, tr.Pos, tr.Vel, h, ownVel.Z, tr.Vel.Z)
		if tau >= float64(table.Horizon()) {
			t.Fatalf("test geometry leaves threat outside the horizon (tau %v)", tau)
		}
		var q [NumAdvisories]float64
		table.AllQValues(&q, tau, h, ownVel.Z, tr.Vel.Z, COC)
		for a := range fused {
			if q[a] < fused[a] {
				fused[a] = q[a]
			}
		}
		threats++
	}
	want, ok := bestAllowed(&fused, SenseMask{})
	if !ok {
		t.Fatal("empty mask banned everything")
	}

	logic := NewLogic(table)
	got := logic.DecideMulti(own, tracks, SenseMask{})
	if got.Advisory != want {
		t.Fatalf("fused advisory %v, want maximin %v (fused Q %v)", got.Advisory, want, fused)
	}
	// The most urgent threat (closest, hence smallest tau) supplies Tau/H.
	if got.H != tracks[1].Pos.Z-own.Pos.Z {
		t.Fatalf("reported H %v does not match the most urgent threat", got.H)
	}
}

// TestDecideMultiHoldsUntilClearOfAll: an active advisory must not drop
// while any intruder is still converging, even if every threat has left the
// table horizon.
func TestDecideMultiHoldsUntilClearOfAll(t *testing.T) {
	table := getCoarseTable(t)
	logic := NewLogic(table)
	own := multiTestOwn()

	// Drive the executive into an alert with a close sandwich.
	in := []geom.Track{headOnTrack(500, 20, -2), headOnTrack(480, -20, 2)}
	d := logic.DecideMulti(own, in, SenseMask{})
	if !d.Alerting {
		t.Fatal("close sandwich did not alert")
	}

	// Both threats far away but still converging (head-on): hold.
	far := []geom.Track{headOnTrack(12000, 20, 0), headOnTrack(12500, -20, 0)}
	d = logic.DecideMulti(own, far, SenseMask{})
	if !d.Alerting {
		t.Fatal("advisory dropped while intruders still converging")
	}

	// Both diverging behind the ownship: clear of all, advisory ends.
	gone := []geom.Track{
		{Pos: geom.Vec3{X: -3000, Y: 0, Z: 20}, Vel: geom.Vec3{X: -45, Y: 0, Z: 0}},
		{Pos: geom.Vec3{X: -3200, Y: 0, Z: -20}, Vel: geom.Vec3{X: -45, Y: 0, Z: 0}},
	}
	d = logic.DecideMulti(own, gone, SenseMask{})
	if d.Alerting {
		t.Fatal("advisory held after every intruder cleared")
	}
}
