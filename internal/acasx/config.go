package acasx

import (
	"fmt"

	"acasxval/internal/geom"
)

// GridConfig discretizes the continuous state variables. The defaults put
// every advisory target rate and the NMAC altitude threshold exactly on
// grid cut points so the interpolation error is zero where it matters most.
type GridConfig struct {
	// HMax bounds relative altitude |h| in metres (default 1000 ft).
	HMax float64
	// NumH is the number of h cut points (odd, so 0 is a cut point).
	NumH int
	// RateMax bounds vertical rates |dh| in m/s (default 2500 fpm).
	RateMax float64
	// NumRate is the number of cut points per vertical-rate axis (odd).
	NumRate int
	// Horizon is the number of one-second tau slices (default 40: the
	// short-term 20-40 s regime ACAS XU addresses).
	Horizon int
}

// DynamicsConfig is the probabilistic encounter-evolution model: how the
// offline MDP believes vertical rates evolve during one decision step.
type DynamicsConfig struct {
	// Dt is the decision period in seconds (default 1).
	Dt float64
	// OwnAccelSigma is the white-noise vertical acceleration of the
	// own-ship when no advisory is active, m/s^2.
	OwnAccelSigma float64
	// IntruderAccelSigma is the intruder's white-noise vertical
	// acceleration, m/s^2 (the intruder is never assumed to maneuver in
	// the offline model).
	IntruderAccelSigma float64
	// ComplianceSigma is the residual noise while complying with an
	// advisory, m/s^2.
	ComplianceSigma float64
	// Accel is the own-ship's capture acceleration for initial advisories,
	// m/s^2 (about g/4).
	Accel float64
	// StrengthenAccel is the capture acceleration for strengthened
	// advisories, m/s^2 (about g/3).
	StrengthenAccel float64
}

// CostConfig is the preference system. Values follow the paper's
// convention: the mid-air collision state is assigned 10000 (section VII
// footnote: "in the MDP model 10000 was assigned to mid-air collision
// states"); the remaining event costs are scaled relative to it following
// the structure of ATC-371.
type CostConfig struct {
	// Collision is the cost of an NMAC at tau = 0.
	Collision float64
	// NewAlert is the cost of issuing an advisory from COC (false-alarm
	// control).
	NewAlert float64
	// ActivePerStep is the per-step cost of keeping any advisory active.
	ActivePerStep float64
	// Strengthen is the cost of strengthening an advisory.
	Strengthen float64
	// Reversal is the cost of reversing advisory sense.
	Reversal float64
	// NMACVertical is the vertical threshold defining a collision at
	// tau = 0, metres (100 ft).
	NMACVertical float64
}

// Config assembles the full offline model plus the online tau geometry.
type Config struct {
	Grid     GridConfig
	Dynamics DynamicsConfig
	Cost     CostConfig
	// DMOD is the horizontal conflict radius used to derive tau online,
	// metres (500 ft).
	DMOD float64
	// UseVerticalTau enables the vertical-conflict fallback in the online
	// executive: when the aircraft are already inside DMOD horizontally
	// (horizontal tau = 0) but still vertically separated, the decision
	// tau becomes the time until the vertical separation closes to the
	// NMAC band. Off by default — the paper's system derives tau from
	// horizontal closure only, which is precisely why its GA search
	// discovers the slow-closure tail-approach blind spot. Turning this on
	// is the model revision a developer would make after that discovery
	// (see examples/modelrevision).
	UseVerticalTau bool
	// Quantized installs the int16 fixed-point table backend after the
	// solve (or load): Q values are stored as per-slice affine-coded int16
	// in a vertex-major, advisory-contiguous, tau-interleaved layout —
	// about 4x smaller than the float64 slices, so the online working set
	// becomes cache-resident instead of striding ~40 MB of DRAM. Every
	// decision served from the quantized backend is guarded by a margin
	// gate: when the top-two advisory values are closer than the
	// quantization error bound, the executive re-queries the retained
	// exact slices, so chosen advisories are identical to the exact path
	// (see Table.Quantize).
	Quantized bool
	// Workers parallelizes the offline solve (default: serial).
	Workers int
	// LegacySweep disables the precomputed transition-projection cache and
	// re-projects every sigma-outcome successor on every tau slice, as the
	// original solver did. The generated table is bit-identical either way
	// (the equivalence test asserts it); the flag exists to keep the
	// reference path testable, not because the outputs differ.
	LegacySweep bool
}

// DefaultConfig returns the full-resolution parameterization.
func DefaultConfig() Config {
	return Config{
		Grid: GridConfig{
			HMax:    geom.Feet(1000),
			NumH:    41,
			RateMax: geom.FPM(2500),
			NumRate: 11,
			Horizon: 40,
		},
		Dynamics: DynamicsConfig{
			Dt:                 1.0,
			OwnAccelSigma:      1.0,
			IntruderAccelSigma: 1.5,
			ComplianceSigma:    0.5,
			Accel:              geom.G / 4,
			StrengthenAccel:    geom.G / 3,
		},
		Cost: CostConfig{
			Collision:     10000,
			NewAlert:      100,
			ActivePerStep: 10,
			Strengthen:    20,
			Reversal:      50,
			NMACVertical:  geom.NMACVertical,
		},
		DMOD:    geom.NMACHorizontal,
		Workers: 1,
	}
}

// CoarseConfig returns a reduced-resolution model for tests and quick
// examples: same structure, ~30x fewer states.
func CoarseConfig() Config {
	cfg := DefaultConfig()
	cfg.Grid.NumH = 17
	cfg.Grid.NumRate = 5
	cfg.Grid.Horizon = 25
	return cfg
}

// Validate checks the configuration.
func (c Config) Validate() error {
	g := c.Grid
	if g.HMax <= 0 {
		return fmt.Errorf("acasx: HMax %v <= 0", g.HMax)
	}
	if g.NumH < 3 || g.NumH%2 == 0 {
		return fmt.Errorf("acasx: NumH %d must be odd and >= 3", g.NumH)
	}
	if g.RateMax <= 0 {
		return fmt.Errorf("acasx: RateMax %v <= 0", g.RateMax)
	}
	if g.RateMax < geom.FPM(2500) {
		return fmt.Errorf("acasx: RateMax %v below the strengthened advisory rate %v", g.RateMax, geom.FPM(2500))
	}
	if g.NumRate < 3 || g.NumRate%2 == 0 {
		return fmt.Errorf("acasx: NumRate %d must be odd and >= 3", g.NumRate)
	}
	if g.Horizon < 1 {
		return fmt.Errorf("acasx: Horizon %d < 1", g.Horizon)
	}
	d := c.Dynamics
	if d.Dt <= 0 {
		return fmt.Errorf("acasx: Dt %v <= 0", d.Dt)
	}
	if d.OwnAccelSigma < 0 || d.IntruderAccelSigma < 0 || d.ComplianceSigma < 0 {
		return fmt.Errorf("acasx: negative dynamics sigma")
	}
	if d.Accel <= 0 || d.StrengthenAccel < d.Accel {
		return fmt.Errorf("acasx: invalid accelerations %v/%v", d.Accel, d.StrengthenAccel)
	}
	k := c.Cost
	if k.Collision <= 0 {
		return fmt.Errorf("acasx: Collision cost %v <= 0", k.Collision)
	}
	if k.NewAlert < 0 || k.ActivePerStep < 0 || k.Strengthen < 0 || k.Reversal < 0 {
		return fmt.Errorf("acasx: negative event cost")
	}
	if k.NMACVertical <= 0 || k.NMACVertical > g.HMax {
		return fmt.Errorf("acasx: NMACVertical %v outside (0, HMax]", k.NMACVertical)
	}
	if c.DMOD <= 0 {
		return fmt.Errorf("acasx: DMOD %v <= 0", c.DMOD)
	}
	return nil
}
