package acasx

import (
	"math"
	"testing"

	"acasxval/internal/stats"
)

// randomStates draws n seeded query states spanning the table's domain,
// deliberately overshooting the bounds so clamping paths are exercised.
func randomStates(table *Table, n int, seed uint64) []struct{ tau, h, dh0, dh1 float64 } {
	rng := stats.NewRNG(seed)
	g := table.cfg.Grid
	out := make([]struct{ tau, h, dh0, dh1 float64 }, n)
	for i := range out {
		out[i].tau = rng.Float64()*float64(g.Horizon+4) - 2
		out[i].h = (rng.Float64()*2 - 1) * g.HMax * 1.2
		out[i].dh0 = (rng.Float64()*2 - 1) * g.RateMax * 1.2
		out[i].dh1 = (rng.Float64()*2 - 1) * g.RateMax * 1.2
	}
	return out
}

// TestSharedWeightLookupGolden is the golden equivalence test for the
// shared-weight lookup: AllQValues, BestAdvisoryFast and Value must agree
// bit for bit with the per-action QValue reference path across a seeded
// random state sample, for every advisory state and mask.
func TestSharedWeightLookupGolden(t *testing.T) {
	table := getCoarseTable(t)
	masks := []SenseMask{
		{},
		{BanUp: true},
		{BanDown: true},
		{BanUp: true, BanDown: true},
	}
	for _, s := range randomStates(table, 300, 7) {
		for ra := 0; ra < NumAdvisories; ra++ {
			var q [NumAdvisories]float64
			table.AllQValues(&q, s.tau, s.h, s.dh0, s.dh1, Advisory(ra))
			refBest := math.Inf(-1)
			for a := 0; a < NumAdvisories; a++ {
				ref := table.QValue(s.tau, s.h, s.dh0, s.dh1, Advisory(ra), Advisory(a))
				if math.Float64bits(q[a]) != math.Float64bits(ref) {
					t.Fatalf("state %+v ra=%d a=%d: AllQValues %v != QValue %v", s, ra, a, q[a], ref)
				}
				if ref > refBest {
					refBest = ref
				}
			}
			if got := table.Value(s.tau, s.h, s.dh0, s.dh1, Advisory(ra)); math.Float64bits(got) != math.Float64bits(refBest) {
				t.Fatalf("state %+v ra=%d: Value %v != max-over-QValue %v", s, ra, got, refBest)
			}
			for _, mask := range masks {
				// Reference: the original per-action argmax over QValue.
				wantBest, wantFound := COC, false
				wantQ := math.Inf(-1)
				for _, a := range Advisories() {
					if !mask.Allows(a) {
						continue
					}
					if ref := table.QValue(s.tau, s.h, s.dh0, s.dh1, Advisory(ra), a); ref > wantQ {
						wantQ, wantBest, wantFound = ref, a, true
					}
				}
				gotBest, gotFound := table.BestAdvisoryFast(s.tau, s.h, s.dh0, s.dh1, Advisory(ra), mask)
				if gotBest != wantBest || gotFound != wantFound {
					t.Fatalf("state %+v ra=%d mask=%+v: fast (%v,%v) != reference (%v,%v)",
						s, ra, mask, gotBest, gotFound, wantBest, wantFound)
				}
			}
		}
	}
}

// TestAllQValuesInvalidAdvisoryState: an invalid ra yields -Inf across the
// board and no selectable advisory, matching the per-action path.
func TestAllQValuesInvalidAdvisoryState(t *testing.T) {
	table := getCoarseTable(t)
	var q [NumAdvisories]float64
	table.AllQValues(&q, 10, 0, 0, 0, Advisory(99))
	for a, v := range q {
		if !math.IsInf(v, -1) {
			t.Fatalf("a=%d: got %v, want -Inf", a, v)
		}
	}
	if _, ok := table.BestAdvisoryFast(10, 0, 0, 0, Advisory(99), SenseMask{}); ok {
		t.Fatal("BestAdvisoryFast accepted an invalid advisory state")
	}
}

// TestBeliefExpectedAllQGolden: the belief executive's batched integration
// must agree bit for bit with the per-action expectedQ reference.
func TestBeliefExpectedAllQGolden(t *testing.T) {
	table := getCoarseTable(t)
	for _, sigmas := range []BeliefSigmas{
		DefaultBeliefSigmas(),
		{H: 0, Rate: 0.5, Tau: 0}, // zero-sigma dimensions skip nodes
		{},
	} {
		l, err := NewBeliefLogic(table, sigmas)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range randomStates(table, 60, 11) {
			for ra := 0; ra < NumAdvisories; ra++ {
				var q [NumAdvisories]float64
				l.expectedAllQ(&q, s.tau, s.h, s.dh0, s.dh1, Advisory(ra))
				for a := 0; a < NumAdvisories; a++ {
					ref := l.expectedQ(s.tau, s.h, s.dh0, s.dh1, Advisory(ra), Advisory(a))
					if math.Float64bits(q[a]) != math.Float64bits(ref) {
						t.Fatalf("sigmas %+v state %+v ra=%d a=%d: %v != %v", sigmas, s, ra, a, q[a], ref)
					}
				}
			}
		}
	}
}

// TestSweepEquivalenceBitIdentical: the precomputed-transition solve and
// the legacy per-slice projection must produce bit-identical tables.
func TestSweepEquivalenceBitIdentical(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cfg := tinyConfig()
		cfg.Workers = workers
		cached, err := BuildTable(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.LegacySweep = true
		legacy, err := BuildTable(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(cached.q) != len(legacy.q) {
			t.Fatalf("workers=%d: slice count %d vs %d", workers, len(cached.q), len(legacy.q))
		}
		for k := range cached.q {
			for i := range cached.q[k] {
				if math.Float64bits(cached.q[k][i]) != math.Float64bits(legacy.q[k][i]) {
					t.Fatalf("workers=%d: slice %d entry %d: cached %v != legacy %v",
						workers, k, i, cached.q[k][i], legacy.q[k][i])
				}
			}
		}
	}
}

// TestSweepEquivalentAdvisories: belt and braces on top of the bit-identity
// check — both solvers select the same advisory across a state sample.
func TestSweepEquivalentAdvisories(t *testing.T) {
	cfg := tinyConfig()
	cached, err := BuildTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.LegacySweep = true
	legacy, err := BuildTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range randomStates(cached, 200, 3) {
		for ra := 0; ra < NumAdvisories; ra++ {
			a1, ok1 := cached.BestAdvisory(s.tau, s.h, s.dh0, s.dh1, Advisory(ra), SenseMask{})
			a2, ok2 := legacy.BestAdvisory(s.tau, s.h, s.dh0, s.dh1, Advisory(ra), SenseMask{})
			if a1 != a2 || ok1 != ok2 {
				t.Fatalf("state %+v ra=%d: cached %v/%v vs legacy %v/%v", s, ra, a1, ok1, a2, ok2)
			}
		}
	}
}

// TestLookupHotPathZeroAlloc is the allocation gate on the online hot path:
// a decision-cycle table query must not allocate. CI additionally runs
// BenchmarkTableLookupHot with -benchmem and fails on a non-zero allocs/op.
func TestLookupHotPathZeroAlloc(t *testing.T) {
	table := getCoarseTable(t)
	var sink Advisory
	allocs := testing.AllocsPerRun(200, func() {
		sink, _ = table.BestAdvisoryFast(12.5, 30, 1.5, -2.5, COC, SenseMask{})
	})
	if allocs != 0 {
		t.Fatalf("BestAdvisoryFast allocated %v times per run", allocs)
	}
	var q [NumAdvisories]float64
	allocs = testing.AllocsPerRun(200, func() {
		table.AllQValues(&q, 7.25, -40, 2, 1, Climb1500)
	})
	if allocs != 0 {
		t.Fatalf("AllQValues allocated %v times per run", allocs)
	}
	_ = sink
}
