package acasx

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"acasxval/internal/geom"
	"acasxval/internal/mdp"
	"acasxval/internal/uav"
)

// tinyConfig is small enough for the tabular differential oracle.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Grid.NumH = 9
	cfg.Grid.NumRate = 3
	cfg.Grid.Horizon = 6
	return cfg
}

// sharedCoarseTable builds the coarse table once for the whole test
// package.
var (
	coarseOnce  sync.Once
	coarseTable *Table
	coarseErr   error
)

func getCoarseTable(t testing.TB) *Table {
	t.Helper()
	coarseOnce.Do(func() {
		cfg := CoarseConfig()
		cfg.Workers = 4
		coarseTable, coarseErr = BuildTable(cfg)
	})
	if coarseErr != nil {
		t.Fatal(coarseErr)
	}
	return coarseTable
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"HMax", func(c *Config) { c.Grid.HMax = 0 }},
		{"NumH even", func(c *Config) { c.Grid.NumH = 10 }},
		{"NumH small", func(c *Config) { c.Grid.NumH = 1 }},
		{"RateMax", func(c *Config) { c.Grid.RateMax = 0 }},
		{"RateMax below advisory", func(c *Config) { c.Grid.RateMax = geom.FPM(1000) }},
		{"NumRate", func(c *Config) { c.Grid.NumRate = 4 }},
		{"Horizon", func(c *Config) { c.Grid.Horizon = 0 }},
		{"Dt", func(c *Config) { c.Dynamics.Dt = 0 }},
		{"neg sigma", func(c *Config) { c.Dynamics.OwnAccelSigma = -1 }},
		{"accel", func(c *Config) { c.Dynamics.Accel = 0 }},
		{"strengthen accel", func(c *Config) { c.Dynamics.StrengthenAccel = 0.1 }},
		{"collision", func(c *Config) { c.Cost.Collision = 0 }},
		{"neg cost", func(c *Config) { c.Cost.NewAlert = -1 }},
		{"nmac", func(c *Config) { c.Cost.NMACVertical = 0 }},
		{"nmac above hmax", func(c *Config) { c.Cost.NMACVertical = c.Grid.HMax * 2 }},
		{"dmod", func(c *Config) { c.DMOD = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("expected validation error")
			}
			if _, err := BuildTable(cfg); err == nil {
				t.Error("BuildTable should reject invalid config")
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if err := CoarseConfig().Validate(); err != nil {
		t.Errorf("coarse config invalid: %v", err)
	}
}

func TestAdvisoryProperties(t *testing.T) {
	if len(Advisories()) != NumAdvisories {
		t.Fatal("advisory list size mismatch")
	}
	for _, a := range Advisories() {
		if !a.Valid() {
			t.Errorf("%v invalid", a)
		}
		// Mirror is an involution and flips the sense.
		if a.Mirror().Mirror() != a {
			t.Errorf("Mirror not an involution for %v", a)
		}
		if a.Sense() != SenseNone && a.Mirror().Sense() != -a.Sense() {
			t.Errorf("Mirror of %v does not flip sense", a)
		}
		if a.Sense() == SenseUp && a.TargetRate() <= 0 {
			t.Errorf("%v has non-positive target rate", a)
		}
		if a.Sense() == SenseDown && a.TargetRate() >= 0 {
			t.Errorf("%v has non-negative target rate", a)
		}
	}
	if COC.TargetRate() != 0 || COC.Sense() != SenseNone || COC.Strengthened() {
		t.Error("COC properties wrong")
	}
	if !StrengthenClimb2500.Strengthened() || !StrengthenDescend2500.Strengthened() {
		t.Error("strengthened flags wrong")
	}
	if Advisory(99).Valid() {
		t.Error("out-of-range advisory claims valid")
	}
	if Climb1500.String() != "CL1500" || Advisory(99).String() == "" {
		t.Error("advisory names wrong")
	}
}

func TestSenseMask(t *testing.T) {
	none := SenseMask{}
	for _, a := range Advisories() {
		if !none.Allows(a) {
			t.Errorf("empty mask bans %v", a)
		}
	}
	up := SenseMask{BanUp: true}
	if up.Allows(Climb1500) || up.Allows(StrengthenClimb2500) {
		t.Error("BanUp does not ban climbs")
	}
	if !up.Allows(Descend1500) || !up.Allows(COC) {
		t.Error("BanUp bans too much")
	}
}

func TestCoordinationMask(t *testing.T) {
	if m := CoordinationMask(Climb1500); !m.BanUp || m.BanDown {
		t.Errorf("climb coordination mask = %+v", m)
	}
	if m := CoordinationMask(StrengthenDescend2500); !m.BanDown || m.BanUp {
		t.Errorf("descend coordination mask = %+v", m)
	}
	if m := CoordinationMask(COC); m.BanUp || m.BanDown {
		t.Errorf("COC coordination mask = %+v", m)
	}
}

func TestEventCosts(t *testing.T) {
	m, err := newModel(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	k := m.cfg.Cost
	if got := m.eventCost(COC, COC); got != 0 {
		t.Errorf("COC->COC cost = %v", got)
	}
	if got := m.eventCost(COC, Climb1500); got != -(k.NewAlert + k.ActivePerStep) {
		t.Errorf("new alert cost = %v", got)
	}
	if got := m.eventCost(Climb1500, Climb1500); got != -k.ActivePerStep {
		t.Errorf("maintain cost = %v", got)
	}
	if got := m.eventCost(Climb1500, Descend1500); got != -(k.ActivePerStep + k.Reversal) {
		t.Errorf("reversal cost = %v", got)
	}
	if got := m.eventCost(Climb1500, StrengthenClimb2500); got != -(k.ActivePerStep + k.Strengthen) {
		t.Errorf("strengthen cost = %v", got)
	}
	// Reversal directly to a strengthened opposite advisory costs reversal
	// (not strengthen: sense changed).
	if got := m.eventCost(Climb1500, StrengthenDescend2500); got != -(k.ActivePerStep + k.Reversal) {
		t.Errorf("reversal-strengthen cost = %v", got)
	}
	// Dropping an advisory is free.
	if got := m.eventCost(StrengthenClimb2500, COC); got != 0 {
		t.Errorf("drop cost = %v", got)
	}
}

func TestTerminalValues(t *testing.T) {
	m, err := newModel(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	v := m.terminalValues()
	// h axis for NumH=9, HMax=304.8: spacing 76.2 m; only h=0 is inside
	// the 30.48 m NMAC band.
	hAxis := m.grid.Axis(0)
	for hi, h := range hAxis {
		inside := math.Abs(h) <= m.cfg.Cost.NMACVertical
		for ra := 0; ra < NumAdvisories; ra++ {
			for j := 0; j < m.grid.AxisLen(1)*m.grid.AxisLen(2); j++ {
				idx := ra*m.contSize + hi*m.grid.AxisLen(1)*m.grid.AxisLen(2) + j
				want := 0.0
				if inside {
					want = -m.cfg.Cost.Collision
				}
				if v[idx] != want {
					t.Fatalf("terminal value at h=%v ra=%d = %v, want %v", h, ra, v[idx], want)
				}
			}
		}
	}
}

// TestBuilderMatchesGenericSolver is the differential oracle: the
// specialized backward-induction builder must agree with the generic
// finite-horizon MDP solver on the tau-expanded tabular problem.
func TestBuilderMatchesGenericSolver(t *testing.T) {
	cfg := tinyConfig()
	table, err := BuildTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	problem, m, err := TauExpandedProblem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := mdp.ValidateProblem(problem, 1e-9); err != nil {
		t.Fatalf("tau-expanded problem invalid: %v", err)
	}
	// Solve with undiscounted value iteration: all paths reach tau=0, so
	// this converges and V(k*stateSize + s) must equal the builder's
	// optimal value at slice k.
	sol, err := mdp.ValueIteration(problem, mdp.Options{
		Discount:      1,
		Tolerance:     1e-9,
		MaxIterations: cfg.Grid.Horizon + 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Converged {
		t.Fatal("generic solver did not converge")
	}
	for k := 0; k <= cfg.Grid.Horizon; k++ {
		for c := 0; c < m.contSize; c++ {
			pt := m.grid.Point(c)
			for ra := 0; ra < NumAdvisories; ra++ {
				s := m.stateIndex(c, Advisory(ra))
				want := sol.Values[k*m.stateSize+s]
				got := math.Inf(-1)
				for a := 0; a < NumAdvisories; a++ {
					q := table.QValue(float64(k), pt[0], pt[1], pt[2], Advisory(ra), Advisory(a))
					if q > got {
						got = q
					}
				}
				if k == 0 {
					// Slice 0 stores terminal values directly.
					got = table.QValue(0, pt[0], pt[1], pt[2], Advisory(ra), COC)
				}
				if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
					t.Fatalf("k=%d c=%d ra=%d: builder %v vs generic %v", k, c, ra, got, want)
				}
			}
		}
	}
}

// TestMirrorSymmetry: the model is symmetric under (h, dh0, dh1) ->
// (-h, -dh0, -dh1) with advisory senses swapped.
func TestMirrorSymmetry(t *testing.T) {
	table := getCoarseTable(t)
	states := []struct{ h, dh0, dh1 float64 }{
		{50, 2, -3},
		{120, -5, 5},
		{10, 0, 1},
		{-80, 7, 7},
	}
	for _, s := range states {
		for tau := 2.0; tau <= 20; tau += 6 {
			for _, ra := range Advisories() {
				for _, a := range Advisories() {
					q1 := table.QValue(tau, s.h, s.dh0, s.dh1, ra, a)
					q2 := table.QValue(tau, -s.h, -s.dh0, -s.dh1, ra.Mirror(), a.Mirror())
					if math.Abs(q1-q2) > 1e-6*(1+math.Abs(q1)) {
						t.Fatalf("mirror symmetry violated at h=%v tau=%v ra=%v a=%v: %v vs %v",
							s.h, tau, ra, a, q1, q2)
					}
				}
			}
		}
	}
}

func TestParallelBuildMatchesSerial(t *testing.T) {
	cfg := tinyConfig()
	serial, err := BuildTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := BuildTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := range serial.q {
		for i := range serial.q[k] {
			if serial.q[k][i] != parallel.q[k][i] {
				t.Fatalf("slice %d entry %d: serial %v != parallel %v",
					k, i, serial.q[k][i], parallel.q[k][i])
			}
		}
	}
}

// TestValuesMonotoneInThreatProximity: with more time to react (larger
// tau), the situation cannot be worse.
func TestValueImprovesWithTau(t *testing.T) {
	table := getCoarseTable(t)
	// Co-altitude, level flight: the canonical imminent threat.
	v5 := table.Value(5, 0, 0, 0, COC)
	v15 := table.Value(15, 0, 0, 0, COC)
	v24 := table.Value(24, 0, 0, 0, COC)
	if !(v24 >= v15 && v15 >= v5) {
		t.Errorf("value not improving with tau: v5=%v v15=%v v24=%v", v5, v15, v24)
	}
}

// TestSafeStateValueNearZero: with a huge altitude gap the optimal plan is
// no alert and the value is ~0.
func TestSafeStateValueNearZero(t *testing.T) {
	table := getCoarseTable(t)
	v := table.Value(20, table.cfg.Grid.HMax, 0, 0, COC)
	if v < -table.cfg.Cost.NewAlert {
		t.Errorf("safe state value = %v, want near 0", v)
	}
	best, _ := table.BestAdvisory(20, table.cfg.Grid.HMax, 0, 0, COC, SenseMask{})
	if best != COC {
		t.Errorf("safe state advisory = %v, want COC", best)
	}
}

// TestThreatTriggersAdvisory: co-altitude level threat at moderate tau must
// alert, and the advisory must open separation.
func TestThreatTriggersAdvisory(t *testing.T) {
	table := getCoarseTable(t)
	best, ok := table.BestAdvisory(10, 0, 0, 0, COC, SenseMask{})
	if !ok {
		t.Fatal("no advisory found")
	}
	if best == COC {
		t.Errorf("imminent co-altitude threat yields COC")
	}
}

// TestCoordinationMaskRestrictsSense: with climbs banned the logic must
// pick a descend-sense advisory for a symmetric threat.
func TestCoordinationMaskRestrictsSense(t *testing.T) {
	table := getCoarseTable(t)
	best, ok := table.BestAdvisory(10, 0, 0, 0, COC, SenseMask{BanUp: true})
	if !ok {
		t.Fatal("no advisory found")
	}
	if best.Sense() == SenseUp {
		t.Errorf("mask violated: %v", best)
	}
	// Fully banned: only COC remains.
	best, ok = table.BestAdvisory(10, 0, 0, 0, COC, SenseMask{BanUp: true, BanDown: true})
	if !ok || best != COC {
		t.Errorf("with both senses banned got %v (ok=%v), want COC", best, ok)
	}
}

// TestAdvisorySenseMatchesGeometry: intruder well above own-ship -> descend
// is preferred over climb; and mirrored.
func TestAdvisorySenseMatchesGeometry(t *testing.T) {
	table := getCoarseTable(t)
	h := geom.Feet(300) // intruder 300 ft above
	qDes := table.QValue(12, h, 0, 0, COC, Descend1500)
	qCl := table.QValue(12, h, 0, 0, COC, Climb1500)
	if qDes <= qCl {
		t.Errorf("intruder above: Q(DES)=%v <= Q(CL)=%v", qDes, qCl)
	}
	qDes2 := table.QValue(12, -h, 0, 0, COC, Descend1500)
	qCl2 := table.QValue(12, -h, 0, 0, COC, Climb1500)
	if qCl2 <= qDes2 {
		t.Errorf("intruder below: Q(CL)=%v <= Q(DES)=%v", qCl2, qDes2)
	}
}

func TestQValueClampsTauAndInvalidAdvisories(t *testing.T) {
	table := getCoarseTable(t)
	if got := table.QValue(-5, 0, 0, 0, COC, COC); got != table.QValue(0, 0, 0, 0, COC, COC) {
		t.Error("negative tau not clamped to 0")
	}
	if got := table.QValue(1e9, 0, 0, 0, COC, COC); got != table.QValue(float64(table.Horizon()), 0, 0, 0, COC, COC) {
		t.Error("huge tau not clamped to horizon")
	}
	if got := table.QValue(5, 0, 0, 0, Advisory(17), COC); !math.IsInf(got, -1) {
		t.Error("invalid ra should yield -inf")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	cfg := tinyConfig()
	table, err := BuildTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := table.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadTable(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Horizon() != table.Horizon() {
		t.Fatalf("horizon %d != %d", loaded.Horizon(), table.Horizon())
	}
	for k := range table.q {
		for i := range table.q[k] {
			if table.q[k][i] != loaded.q[k][i] {
				t.Fatalf("slice %d entry %d differs after round trip", k, i)
			}
		}
	}
	// Lookups must agree too (grid reconstruction).
	if got, want := loaded.QValue(3.5, 40, 1, -2, COC, Climb1500),
		table.QValue(3.5, 40, 1, -2, COC, Climb1500); got != want {
		t.Errorf("lookup after round trip: %v != %v", got, want)
	}
}

func TestSerializationRejectsCorruption(t *testing.T) {
	table, err := BuildTable(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := table.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Flip a byte in the data section.
	corrupt := append([]byte(nil), good...)
	corrupt[len(corrupt)/2] ^= 0xFF
	if _, err := ReadTable(bytes.NewReader(corrupt)); err == nil {
		t.Error("corrupted table accepted")
	}

	// Truncate.
	if _, err := ReadTable(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Error("truncated table accepted")
	}

	// Bad magic.
	bad := append([]byte(nil), good...)
	copy(bad, "NOPE")
	if _, err := ReadTable(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}

	// Empty.
	if _, err := ReadTable(bytes.NewReader(nil)); err == nil {
		t.Error("empty file accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	table, err := BuildTable(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/table.acxt"
	if err := table.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumEntries() != table.NumEntries() {
		t.Error("entry count mismatch after file round trip")
	}
	if _, err := LoadTable(path + ".missing"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLogicLifecycle(t *testing.T) {
	table := getCoarseTable(t)
	logic := NewLogic(table)

	// Head-on geometry: own at origin heading +X at 50 m/s; intruder
	// 1.2 km ahead closing at 50 m/s, co-altitude.
	own := uav.State{
		Pos: geom.Vec3{X: 0, Y: 0, Z: 1000},
		Vel: geom.Velocity{Gs: 50, Psi: 0, Vs: 0},
	}
	intrPos := geom.Vec3{X: 1200, Y: 0, Z: 1000}
	intrVel := geom.Vec3{X: -50, Y: 0, Z: 0}

	d := logic.Decide(own, intrPos, intrVel, SenseMask{})
	// tau = (1200 - 152.4)/100 ~ 10.5 s: well inside the coarse table's
	// alerting region (alerts begin around tau = 16 for co-altitude
	// threats).
	if d.Tau > 12 || d.Tau < 9 {
		t.Errorf("tau = %v, want ~10.5", d.Tau)
	}
	if !d.Alerting {
		t.Error("head-on threat did not alert")
	}
	if !d.NewAlert {
		t.Error("first alert not flagged as new")
	}
	if logic.Alerts() != 1 {
		t.Errorf("alert count = %d", logic.Alerts())
	}
	cmd, ok := d.Command()
	if !ok {
		t.Fatal("alerting decision has no command")
	}
	if cmd.TargetVS == 0 {
		t.Error("command target rate zero")
	}

	// Far-away traffic: COC.
	logic.Reset()
	if logic.Advisory() != COC {
		t.Error("reset did not clear advisory")
	}
	d2 := logic.Decide(own, geom.Vec3{X: 50000, Y: 0, Z: 1000}, intrVel, SenseMask{})
	if d2.Alerting {
		t.Error("distant traffic triggered alert")
	}
	if _, ok := d2.Command(); ok {
		t.Error("COC decision produced a command")
	}

	// Diverging traffic: tau unbounded, COC.
	d3 := logic.Decide(own, geom.Vec3{X: -2000, Y: 0, Z: 1000}, geom.Vec3{X: -50}, SenseMask{})
	if d3.Tau != geom.TauUnbounded || d3.Alerting {
		t.Error("diverging traffic should be COC with unbounded tau")
	}
}

func TestLogicReversalAccounting(t *testing.T) {
	table := getCoarseTable(t)
	logic := NewLogic(table)
	own := uav.State{Vel: geom.Velocity{Gs: 50}}
	// Force an alert with the intruder slightly above: expect descend.
	d1 := logic.Decide(own, geom.Vec3{X: 1200, Z: 30}, geom.Vec3{X: -50}, SenseMask{})
	if d1.Advisory.Sense() == SenseNone {
		t.Skip("coarse table did not alert in this geometry")
	}
	// Now ban that sense (coordination flip) and push geometry the other
	// way; any sense change increments reversals.
	mask := SenseMask{}
	if d1.Advisory.Sense() == SenseDown {
		mask.BanDown = true
	} else {
		mask.BanUp = true
	}
	d2 := logic.Decide(own, geom.Vec3{X: 1100, Z: -30}, geom.Vec3{X: -50}, mask)
	if d2.Advisory.Sense() != SenseNone && d2.Advisory.Sense() != d1.Advisory.Sense() {
		if logic.Reversals() != 1 {
			t.Errorf("reversal count = %d, want 1", logic.Reversals())
		}
		if !d2.Reversal {
			t.Error("reversal not flagged")
		}
	}
}

func TestNMAC(t *testing.T) {
	a := geom.Vec3{X: 0, Y: 0, Z: 0}
	if !NMAC(a, geom.Vec3{X: 100, Y: 0, Z: 20}) {
		t.Error("inside cylinder not flagged")
	}
	if NMAC(a, geom.Vec3{X: 200, Y: 0, Z: 0}) {
		t.Error("outside horizontal flagged")
	}
	if NMAC(a, geom.Vec3{X: 0, Y: 0, Z: 40}) {
		t.Error("outside vertical flagged")
	}
}

func TestBuildTableMetadata(t *testing.T) {
	table, err := BuildTable(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if table.BuildTime() <= 0 {
		t.Error("build time not recorded")
	}
	wantEntries := (tinyConfig().Grid.Horizon + 1) * 9 * 3 * 3 * NumAdvisories * NumAdvisories
	if got := table.NumEntries(); got != wantEntries {
		t.Errorf("NumEntries = %d, want %d", got, wantEntries)
	}
}

func BenchmarkTableLookup(b *testing.B) {
	table, err := BuildTable(tinyConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table.BestAdvisory(10.5, 25, 1, -2, COC, SenseMask{})
	}
}

func BenchmarkBuildCoarseTable(b *testing.B) {
	cfg := CoarseConfig()
	cfg.Workers = 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildTable(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
