// Package acasx implements an ACAS XU-style airborne collision avoidance
// system developed by model-based optimization, following the construction
// the paper describes (sections II-III) and attributes to the MIT Lincoln
// Laboratory reports ATC-360/ATC-371: a Markov Decision Process over the
// relative vertical geometry of an encounter — relative altitude h, own and
// intruder vertical rates, and the active advisory — indexed by the time to
// horizontal conflict tau, solved offline by backward-induction value
// iteration into a numeric logic table, then executed online by
// interpolating the table at the observed state.
//
// As in the paper, this is a re-implementation from the public reports, not
// the certified system: "Since there is no publicly available source code
// for ACAS XU, we implemented one based on technical reports [2, 3] ... we
// cannot guarantee the performance of the resultant system. It is certainly
// not ready to be used in any real aircraft." The same caveat applies here;
// the implementation captures the properties of the ACAS XU algorithm
// sufficiently to support the validation techniques under study.
package acasx

import (
	"fmt"

	"acasxval/internal/geom"
)

// Advisory is a resolution advisory — the action set of the MDP and the
// output vocabulary of the logic table.
type Advisory int

// The advisory set: clear of conflict, initial climb/descend at 1500 fpm,
// and strengthened climb/descend at 2500 fpm.
const (
	COC Advisory = iota
	Climb1500
	Descend1500
	StrengthenClimb2500
	StrengthenDescend2500
)

// NumAdvisories is the size of the action set.
const NumAdvisories = 5

// Advisories lists all advisories in index order.
func Advisories() []Advisory {
	return []Advisory{COC, Climb1500, Descend1500, StrengthenClimb2500, StrengthenDescend2500}
}

// String implements fmt.Stringer.
func (a Advisory) String() string {
	switch a {
	case COC:
		return "COC"
	case Climb1500:
		return "CL1500"
	case Descend1500:
		return "DES1500"
	case StrengthenClimb2500:
		return "SCL2500"
	case StrengthenDescend2500:
		return "SDES2500"
	default:
		return fmt.Sprintf("Advisory(%d)", int(a))
	}
}

// Valid reports whether a is a member of the advisory set.
func (a Advisory) Valid() bool { return a >= COC && a < NumAdvisories }

// Sense is the vertical direction of an advisory.
type Sense int

// Advisory senses.
const (
	SenseNone Sense = 0
	SenseUp   Sense = 1
	SenseDown Sense = -1
)

// Sense returns the vertical sense of the advisory.
func (a Advisory) Sense() Sense {
	switch a {
	case Climb1500, StrengthenClimb2500:
		return SenseUp
	case Descend1500, StrengthenDescend2500:
		return SenseDown
	default:
		return SenseNone
	}
}

// Strengthened reports whether the advisory is a strengthened (2500 fpm)
// maneuver.
func (a Advisory) Strengthened() bool {
	return a == StrengthenClimb2500 || a == StrengthenDescend2500
}

// TargetRate returns the commanded vertical rate in m/s.
func (a Advisory) TargetRate() float64 {
	switch a {
	case Climb1500:
		return geom.FPM(1500)
	case Descend1500:
		return geom.FPM(-1500)
	case StrengthenClimb2500:
		return geom.FPM(2500)
	case StrengthenDescend2500:
		return geom.FPM(-2500)
	default:
		return 0
	}
}

// Mirror returns the advisory with the opposite sense (COC mirrors to
// itself). The offline model is symmetric under h -> -h with senses
// swapped; tests exploit this.
func (a Advisory) Mirror() Advisory {
	switch a {
	case Climb1500:
		return Descend1500
	case Descend1500:
		return Climb1500
	case StrengthenClimb2500:
		return StrengthenDescend2500
	case StrengthenDescend2500:
		return StrengthenClimb2500
	default:
		return a
	}
}

// SenseMask restricts the advisory senses the logic may choose; used for
// coordination between aircraft ("if the own-ship chooses a 'climb'
// maneuver, it will send a coordination command to the intruder to require
// it not to choose maneuvers in the same direction").
type SenseMask struct {
	// BanUp forbids climb-sense advisories.
	BanUp bool
	// BanDown forbids descend-sense advisories.
	BanDown bool
}

// Allows reports whether the mask permits the advisory.
func (m SenseMask) Allows(a Advisory) bool {
	switch a.Sense() {
	case SenseUp:
		return !m.BanUp
	case SenseDown:
		return !m.BanDown
	default:
		return true
	}
}
