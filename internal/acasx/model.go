package acasx

import (
	"acasxval/internal/geom"
	"acasxval/internal/interp"
)

// model is the offline MDP: the discretized state space over (h, dh0, dh1)
// crossed with the discrete advisory state, plus the sigma-point dynamics
// used to build successor distributions.
type model struct {
	cfg Config
	// grid spans the three continuous dimensions (h, dh0, dh1).
	grid *interp.Grid
	// contSize is grid.Size(): the number of continuous-state vertices.
	contSize int
	// stateSize is contSize * NumAdvisories: one value-table slice.
	stateSize int
	// sigma are the 3-point Gauss-Hermite quadrature nodes/weights used to
	// integrate white-noise accelerations: nodes at -sqrt(3), 0, +sqrt(3)
	// standard deviations with weights 1/6, 2/3, 1/6.
	sigmaNodes   [3]float64
	sigmaWeights [3]float64
}

func newModel(cfg Config) (*model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := cfg.Grid
	grid, err := interp.NewGrid(
		interp.Uniform(-g.HMax, g.HMax, g.NumH),
		interp.Uniform(-g.RateMax, g.RateMax, g.NumRate),
		interp.Uniform(-g.RateMax, g.RateMax, g.NumRate),
	)
	if err != nil {
		return nil, err
	}
	m := &model{
		cfg:       cfg,
		grid:      grid,
		contSize:  grid.Size(),
		stateSize: grid.Size() * NumAdvisories,
	}
	const root3 = 1.7320508075688772
	m.sigmaNodes = [3]float64{-root3, 0, root3}
	m.sigmaWeights = [3]float64{1.0 / 6, 2.0 / 3, 1.0 / 6}
	return m, nil
}

// stateIndex flattens (continuous vertex c, advisory ra) into a slice index.
// Layout: ra-major blocks of contSize so that one advisory's continuous
// table is contiguous (good locality for interpolation).
func (m *model) stateIndex(c int, ra Advisory) int {
	return int(ra)*m.contSize + c
}

// terminalValues builds V_0: the collision cost where |h| is inside the
// NMAC threshold at tau = 0, uniformly across rates and advisory states.
func (m *model) terminalValues() []float64 {
	v := make([]float64, m.stateSize)
	hAxis := m.grid.Axis(0)
	n1 := m.grid.AxisLen(1)
	n2 := m.grid.AxisLen(2)
	for hi, h := range hAxis {
		if h > m.cfg.Cost.NMACVertical || h < -m.cfg.Cost.NMACVertical {
			continue
		}
		for ra := 0; ra < NumAdvisories; ra++ {
			base := ra*m.contSize + hi*n1*n2
			for j := 0; j < n1*n2; j++ {
				v[base+j] = -m.cfg.Cost.Collision
			}
		}
	}
	return v
}

// eventCost returns the immediate cost (as negative reward) of choosing
// advisory a while the active advisory is ra.
func (m *model) eventCost(ra, a Advisory) float64 {
	k := m.cfg.Cost
	cost := 0.0
	if a != COC {
		cost += k.ActivePerStep
		if ra == COC {
			cost += k.NewAlert
		} else {
			if ra.Sense() != SenseNone && a.Sense() != SenseNone && ra.Sense() != a.Sense() {
				cost += k.Reversal
			}
			if a.Strengthened() && !ra.Strengthened() && ra.Sense() == a.Sense() {
				cost += k.Strengthen
			}
		}
	}
	return -cost
}

// ownRateNext returns the own-ship's next vertical rate under advisory a
// with noise node w (in units of standard deviations).
func (m *model) ownRateNext(dh0 float64, a Advisory, node float64) float64 {
	d := m.cfg.Dynamics
	var next float64
	if a == COC {
		next = dh0 + node*d.OwnAccelSigma*d.Dt
	} else {
		accel := d.Accel
		if a.Strengthened() {
			accel = d.StrengthenAccel
		}
		dv := geom.Clamp(a.TargetRate()-dh0, -accel*d.Dt, accel*d.Dt)
		next = dh0 + dv + node*d.ComplianceSigma*d.Dt
	}
	return geom.Clamp(next, -m.cfg.Grid.RateMax, m.cfg.Grid.RateMax)
}

// intruderRateNext returns the intruder's next vertical rate with noise
// node w.
func (m *model) intruderRateNext(dh1 float64, node float64) float64 {
	d := m.cfg.Dynamics
	next := dh1 + node*d.IntruderAccelSigma*d.Dt
	return geom.Clamp(next, -m.cfg.Grid.RateMax, m.cfg.Grid.RateMax)
}

// successor computes the deterministic next continuous state for one joint
// sigma outcome: trapezoidal altitude integration with the old and new
// rates.
func (m *model) successor(h, dh0, dh1 float64, a Advisory, ownNode, intrNode float64) (hn, dh0n, dh1n float64) {
	dt := m.cfg.Dynamics.Dt
	dh0n = m.ownRateNext(dh0, a, ownNode)
	dh1n = m.intruderRateNext(dh1, intrNode)
	hn = h + 0.5*((dh1+dh1n)-(dh0+dh0n))*dt
	hn = geom.Clamp(hn, -m.cfg.Grid.HMax, m.cfg.Grid.HMax)
	return hn, dh0n, dh1n
}

// expectedNextValue integrates V(next) over the 3x3 joint sigma outcomes of
// (own noise, intruder noise) for continuous state (h, dh0, dh1) under
// advisory a, reading values from the prev slice at advisory-state a.
// ws is a scratch buffer for interpolation weights.
func (m *model) expectedNextValue(prev []float64, h, dh0, dh1 float64, a Advisory, ws []interp.VertexWeight) float64 {
	base := int(a) * m.contSize
	total := 0.0
	var pt [3]float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			hn, dh0n, dh1n := m.successor(h, dh0, dh1, a, m.sigmaNodes[i], m.sigmaNodes[j])
			pt[0], pt[1], pt[2] = hn, dh0n, dh1n
			w := m.sigmaWeights[i] * m.sigmaWeights[j]
			ws, _ = m.grid.WeightsAppend(ws[:0], pt[:])
			v := 0.0
			for _, vw := range ws {
				v += vw.Weight * prev[base+vw.Flat]
			}
			total += w * v
		}
	}
	return total
}
