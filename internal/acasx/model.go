package acasx

import (
	"acasxval/internal/geom"
	"acasxval/internal/interp"
)

// model is the offline MDP: the discretized state space over (h, dh0, dh1)
// crossed with the discrete advisory state, plus the sigma-point dynamics
// used to build successor distributions.
type model struct {
	cfg Config
	// grid spans the three continuous dimensions (h, dh0, dh1).
	grid *interp.Grid
	// contSize is grid.Size(): the number of continuous-state vertices.
	contSize int
	// stateSize is contSize * NumAdvisories: one value-table slice.
	stateSize int
	// sigma are the 3-point Gauss-Hermite quadrature nodes/weights used to
	// integrate white-noise accelerations: nodes at -sqrt(3), 0, +sqrt(3)
	// standard deviations with weights 1/6, 2/3, 1/6.
	sigmaNodes   [3]float64
	sigmaWeights [3]float64
}

func newModel(cfg Config) (*model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := cfg.Grid
	grid, err := interp.NewGrid(
		interp.Uniform(-g.HMax, g.HMax, g.NumH),
		interp.Uniform(-g.RateMax, g.RateMax, g.NumRate),
		interp.Uniform(-g.RateMax, g.RateMax, g.NumRate),
	)
	if err != nil {
		return nil, err
	}
	m := &model{
		cfg:       cfg,
		grid:      grid,
		contSize:  grid.Size(),
		stateSize: grid.Size() * NumAdvisories,
	}
	const root3 = 1.7320508075688772
	m.sigmaNodes = [3]float64{-root3, 0, root3}
	m.sigmaWeights = [3]float64{1.0 / 6, 2.0 / 3, 1.0 / 6}
	return m, nil
}

// stateIndex flattens (continuous vertex c, advisory ra) into a slice index.
// Layout: ra-major blocks of contSize so that one advisory's continuous
// table is contiguous (good locality for interpolation).
func (m *model) stateIndex(c int, ra Advisory) int {
	return int(ra)*m.contSize + c
}

// terminalValues builds V_0: the collision cost where |h| is inside the
// NMAC threshold at tau = 0, uniformly across rates and advisory states.
func (m *model) terminalValues() []float64 {
	v := make([]float64, m.stateSize)
	hAxis := m.grid.Axis(0)
	n1 := m.grid.AxisLen(1)
	n2 := m.grid.AxisLen(2)
	for hi, h := range hAxis {
		if h > m.cfg.Cost.NMACVertical || h < -m.cfg.Cost.NMACVertical {
			continue
		}
		for ra := 0; ra < NumAdvisories; ra++ {
			base := ra*m.contSize + hi*n1*n2
			for j := 0; j < n1*n2; j++ {
				v[base+j] = -m.cfg.Cost.Collision
			}
		}
	}
	return v
}

// eventCost returns the immediate cost (as negative reward) of choosing
// advisory a while the active advisory is ra.
func (m *model) eventCost(ra, a Advisory) float64 {
	k := m.cfg.Cost
	cost := 0.0
	if a != COC {
		cost += k.ActivePerStep
		if ra == COC {
			cost += k.NewAlert
		} else {
			if ra.Sense() != SenseNone && a.Sense() != SenseNone && ra.Sense() != a.Sense() {
				cost += k.Reversal
			}
			if a.Strengthened() && !ra.Strengthened() && ra.Sense() == a.Sense() {
				cost += k.Strengthen
			}
		}
	}
	return -cost
}

// ownRateNext returns the own-ship's next vertical rate under advisory a
// with noise node w (in units of standard deviations).
func (m *model) ownRateNext(dh0 float64, a Advisory, node float64) float64 {
	d := m.cfg.Dynamics
	var next float64
	if a == COC {
		next = dh0 + node*d.OwnAccelSigma*d.Dt
	} else {
		accel := d.Accel
		if a.Strengthened() {
			accel = d.StrengthenAccel
		}
		dv := geom.Clamp(a.TargetRate()-dh0, -accel*d.Dt, accel*d.Dt)
		next = dh0 + dv + node*d.ComplianceSigma*d.Dt
	}
	return geom.Clamp(next, -m.cfg.Grid.RateMax, m.cfg.Grid.RateMax)
}

// intruderRateNext returns the intruder's next vertical rate with noise
// node w.
func (m *model) intruderRateNext(dh1 float64, node float64) float64 {
	d := m.cfg.Dynamics
	next := dh1 + node*d.IntruderAccelSigma*d.Dt
	return geom.Clamp(next, -m.cfg.Grid.RateMax, m.cfg.Grid.RateMax)
}

// successor computes the deterministic next continuous state for one joint
// sigma outcome: trapezoidal altitude integration with the old and new
// rates.
func (m *model) successor(h, dh0, dh1 float64, a Advisory, ownNode, intrNode float64) (hn, dh0n, dh1n float64) {
	dt := m.cfg.Dynamics.Dt
	dh0n = m.ownRateNext(dh0, a, ownNode)
	dh1n = m.intruderRateNext(dh1, intrNode)
	hn = h + 0.5*((dh1+dh1n)-(dh0+dh0n))*dt
	hn = geom.Clamp(hn, -m.cfg.Grid.HMax, m.cfg.Grid.HMax)
	return hn, dh0n, dh1n
}

// numSigmaOutcomes is the number of joint (own, intruder) sigma outcomes
// integrated per (state, action): the 3x3 Gauss-Hermite tensor grid.
const numSigmaOutcomes = 9

// maxCorners bounds the interpolation expansion of one projected successor:
// the continuous grid is 3-D (h, dh0, dh1), so a cell has at most 2^3
// corners.
const maxCorners = 8

// transitions is the precomputed successor projection of the offline MDP:
// for every (continuous vertex c, action a, sigma outcome o) the grid
// vertices and barycentric weights of the projected successor state. The
// projection (h, dh0, dh1, a) -> vertex weights is independent of tau, so
// computing it once turns every backward-induction sweep into a pure
// gather/dot-product over the previous slice.
//
// Layout: group g = (c*NumAdvisories + a)*numSigmaOutcomes + o owns the
// fixed-stride arena span flats[g*maxCorners : g*maxCorners+counts[g]]
// (likewise weights); the stride wastes a few padding entries on boundary
// states but lets one parallel pass fill disjoint ranges directly. The
// per-outcome quadrature weight is kept separate (outcomeW) rather than
// folded into the corner weights so the cached sweep performs exactly the
// same floating-point operations as the legacy per-slice projection —
// tables stay bit-identical.
type transitions struct {
	counts   []uint8
	flats    []int32
	weights  []float64
	outcomeW [numSigmaOutcomes]float64
}

// buildTransitions projects every (vertex, action, sigma outcome) successor
// onto the grid once, parallelized over vertices.
func (m *model) buildTransitions(workers int) *transitions {
	groups := m.contSize * NumAdvisories * numSigmaOutcomes
	tr := &transitions{
		counts:  make([]uint8, groups),
		flats:   make([]int32, groups*maxCorners),
		weights: make([]float64, groups*maxCorners),
	}
	o := 0
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			tr.outcomeW[o] = m.sigmaWeights[i] * m.sigmaWeights[j]
			o++
		}
	}
	run := func(lo, hi int) {
		var wsBuf [16]interp.VertexWeight
		var ptBuf, sucBuf [3]float64
		for c := lo; c < hi; c++ {
			pt := m.grid.PointAppend(ptBuf[:0], c)
			h, dh0, dh1 := pt[0], pt[1], pt[2]
			g := c * NumAdvisories * numSigmaOutcomes
			for a := 0; a < NumAdvisories; a++ {
				for i := 0; i < 3; i++ {
					for j := 0; j < 3; j++ {
						hn, dh0n, dh1n := m.successor(h, dh0, dh1, Advisory(a), m.sigmaNodes[i], m.sigmaNodes[j])
						sucBuf[0], sucBuf[1], sucBuf[2] = hn, dh0n, dh1n
						ws, _ := m.grid.WeightsAppend(wsBuf[:0], sucBuf[:])
						at := g * maxCorners
						for k, vw := range ws {
							tr.flats[at+k] = int32(vw.Flat)
							tr.weights[at+k] = vw.Weight
						}
						tr.counts[g] = uint8(len(ws))
						g++
					}
				}
			}
		}
	}
	parallelRanges(m.contSize, workers, run)
	return tr
}

// expectedNextValue integrates V(next) over the 3x3 joint sigma outcomes of
// (own noise, intruder noise) for continuous state (h, dh0, dh1) under
// advisory a, reading values from the prev slice at advisory-state a.
// ws is a scratch buffer for interpolation weights.
func (m *model) expectedNextValue(prev []float64, h, dh0, dh1 float64, a Advisory, ws []interp.VertexWeight) float64 {
	base := int(a) * m.contSize
	total := 0.0
	var pt [3]float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			hn, dh0n, dh1n := m.successor(h, dh0, dh1, a, m.sigmaNodes[i], m.sigmaNodes[j])
			pt[0], pt[1], pt[2] = hn, dh0n, dh1n
			w := m.sigmaWeights[i] * m.sigmaWeights[j]
			ws, _ = m.grid.WeightsAppend(ws[:0], pt[:])
			v := 0.0
			for _, vw := range ws {
				v += vw.Weight * prev[base+vw.Flat]
			}
			total += w * v
		}
	}
	return total
}
