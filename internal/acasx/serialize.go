package acasx

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// Binary logic-table format:
//
//	magic "ACXT" | version u32 | config (13 float64/int64 fields) |
//	horizon u32 | per-slice length u32 | Q data float64 LE | crc32 of all
//	preceding bytes
//
// The CRC guards against the truncated/corrupt table files a deployed
// system must reject.

const (
	tableMagic   = "ACXT"
	tableVersion = 1
)

// ErrBadTable is wrapped by all deserialization failures.
var ErrBadTable = errors.New("acasx: bad table file")

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p[:n])
	return n, err
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p[:n])
	return n, err
}

// configFields returns the numeric config fields in serialization order.
func configFields(c *Config) []*float64 {
	return []*float64{
		&c.Grid.HMax, &c.Grid.RateMax,
		&c.Dynamics.Dt, &c.Dynamics.OwnAccelSigma, &c.Dynamics.IntruderAccelSigma,
		&c.Dynamics.ComplianceSigma, &c.Dynamics.Accel, &c.Dynamics.StrengthenAccel,
		&c.Cost.Collision, &c.Cost.NewAlert, &c.Cost.ActivePerStep,
		&c.Cost.Strengthen, &c.Cost.Reversal, &c.Cost.NMACVertical,
		&c.DMOD,
	}
}

func configInts(c *Config) []*int {
	return []*int{&c.Grid.NumH, &c.Grid.NumRate, &c.Grid.Horizon}
}

// WriteTo serializes the table. It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	cw := &crcWriter{w: bw}
	var written int64

	put := func(v any) error {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return err
		}
		written += int64(binary.Size(v))
		return nil
	}

	if _, err := cw.Write([]byte(tableMagic)); err != nil {
		return written, err
	}
	written += 4
	if err := put(uint32(tableVersion)); err != nil {
		return written, err
	}
	cfg := t.cfg
	for _, f := range configFields(&cfg) {
		if err := put(*f); err != nil {
			return written, err
		}
	}
	for _, n := range configInts(&cfg) {
		if err := put(int64(*n)); err != nil {
			return written, err
		}
	}
	var flags uint8
	if cfg.UseVerticalTau {
		flags |= 1
	}
	// The quantized backend is a pure function of the exact slices, so the
	// file stores only the exact payload plus this marker; ReadTable
	// re-derives the int16 codes, which round-trips the backend
	// losslessly (and keeps the format readable by older parsers modulo
	// the flag bit).
	if cfg.Quantized {
		flags |= 2
	}
	if err := put(flags); err != nil {
		return written, err
	}
	if err := put(uint32(len(t.q))); err != nil {
		return written, err
	}
	if err := put(uint32(t.stateSize() * NumAdvisories)); err != nil {
		return written, err
	}
	// Bulk-encode each Q slice into one buffer and issue a single Write
	// per slice: one 8-byte write per float64 costs an order of magnitude
	// more in writer and CRC bookkeeping than the encoding itself.
	var buf []byte
	for _, slice := range t.q {
		if need := 8 * len(slice); cap(buf) < need {
			buf = make([]byte, need)
		} else {
			buf = buf[:need]
		}
		for i, v := range slice {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
		n, err := cw.Write(buf)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	// Trailing CRC of everything written so far (not CRC'd itself).
	crc := cw.crc
	if err := binary.Write(bw, binary.LittleEndian, crc); err != nil {
		return written, err
	}
	written += 4
	return written, bw.Flush()
}

// ReadTable deserializes a table, verifying magic, version, structural
// consistency and the trailing checksum.
func ReadTable(r io.Reader) (*Table, error) {
	cr := &crcReader{r: bufio.NewReaderSize(r, 1<<20)}

	magic := make([]byte, 4)
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrBadTable, err)
	}
	if string(magic) != tableMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadTable, magic)
	}
	var version uint32
	if err := binary.Read(cr, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: reading version: %v", ErrBadTable, err)
	}
	if version != tableVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTable, version)
	}
	var cfg Config
	for _, f := range configFields(&cfg) {
		if err := binary.Read(cr, binary.LittleEndian, f); err != nil {
			return nil, fmt.Errorf("%w: reading config: %v", ErrBadTable, err)
		}
	}
	for _, n := range configInts(&cfg) {
		var v int64
		if err := binary.Read(cr, binary.LittleEndian, &v); err != nil {
			return nil, fmt.Errorf("%w: reading config: %v", ErrBadTable, err)
		}
		*n = int(v)
	}
	var flags uint8
	if err := binary.Read(cr, binary.LittleEndian, &flags); err != nil {
		return nil, fmt.Errorf("%w: reading flags: %v", ErrBadTable, err)
	}
	cfg.UseVerticalTau = flags&1 != 0
	cfg.Quantized = flags&2 != 0
	var slices, sliceLen uint32
	if err := binary.Read(cr, binary.LittleEndian, &slices); err != nil {
		return nil, fmt.Errorf("%w: reading slice count: %v", ErrBadTable, err)
	}
	if err := binary.Read(cr, binary.LittleEndian, &sliceLen); err != nil {
		return nil, fmt.Errorf("%w: reading slice length: %v", ErrBadTable, err)
	}
	const maxEntries = 1 << 28 // 2 GiB of float64s: refuse absurd files
	if slices == 0 || sliceLen == 0 || int64(slices)*int64(sliceLen) > maxEntries {
		return nil, fmt.Errorf("%w: implausible geometry %dx%d", ErrBadTable, slices, sliceLen)
	}
	t := &Table{cfg: cfg, q: make([][]float64, slices)}
	buf := make([]byte, 8*int(sliceLen))
	for k := range t.q {
		if _, err := io.ReadFull(cr, buf); err != nil {
			return nil, fmt.Errorf("%w: reading slice %d: %v", ErrBadTable, k, err)
		}
		slice := make([]float64, sliceLen)
		for i := range slice {
			slice[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		t.q[k] = slice
	}
	wantCRC := cr.crc
	var gotCRC uint32
	if err := binary.Read(cr.r, binary.LittleEndian, &gotCRC); err != nil {
		return nil, fmt.Errorf("%w: reading checksum: %v", ErrBadTable, err)
	}
	if gotCRC != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch (file %08x, computed %08x)", ErrBadTable, gotCRC, wantCRC)
	}
	if err := t.validateLoaded(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTable, err)
	}
	return t, nil
}

// Save writes the table to a file.
func (t *Table) Save(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("acasx: save: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("acasx: save: %w", cerr)
		}
	}()
	if _, err := t.WriteTo(f); err != nil {
		return fmt.Errorf("acasx: save: %w", err)
	}
	return nil
}

// LoadTable reads a table from a file.
func LoadTable(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("acasx: load: %w", err)
	}
	defer f.Close()
	return ReadTable(f)
}
