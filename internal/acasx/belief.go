package acasx

import (
	"fmt"

	"acasxval/internal/geom"
	"acasxval/internal/uav"
)

// BeliefLogic is a QMDP-style executive: instead of looking the logic table
// up at the surveillance point estimate, it integrates the action values
// over a Gaussian belief about the relative state and picks the advisory
// with the best *expected* value.
//
// This addresses the paper's section IV model-structure question — "Is the
// chosen modelling technique (i.e. MDP model) impressive enough ... Or
// should another model (e.g. a POMDP model) be used?" — with the standard
// QMDP approximation used by the real ACAS X for imperfect surveillance:
// solve the underlying MDP offline, then weight its Q values by the state
// belief online.
type BeliefLogic struct {
	table    *Table
	sigmas   BeliefSigmas
	advisory Advisory
	alerts   int
	// multiQ is the per-threat query scratch of DecideMulti (see
	// Logic.multiQ).
	multiQ [NumAdvisories]float64
}

// BeliefSigmas are the standard deviations of the state belief held online.
type BeliefSigmas struct {
	// H is the relative-altitude uncertainty, metres.
	H float64
	// Rate is the vertical-rate uncertainty (per aircraft), m/s.
	Rate float64
	// Tau is the time-to-conflict uncertainty, seconds.
	Tau float64
}

// DefaultBeliefSigmas matches the default ADS-B error model after
// alpha-beta filtering.
func DefaultBeliefSigmas() BeliefSigmas {
	return BeliefSigmas{H: 4, Rate: 0.5, Tau: 1.5}
}

// Validate checks the sigmas.
func (s BeliefSigmas) Validate() error {
	if s.H < 0 || s.Rate < 0 || s.Tau < 0 {
		return fmt.Errorf("acasx: negative belief sigma")
	}
	return nil
}

// NewBeliefLogic creates a QMDP executive around a table.
func NewBeliefLogic(table *Table, sigmas BeliefSigmas) (*BeliefLogic, error) {
	if err := sigmas.Validate(); err != nil {
		return nil, err
	}
	return &BeliefLogic{table: table, sigmas: sigmas}, nil
}

// Advisory returns the active advisory.
func (l *BeliefLogic) Advisory() Advisory { return l.advisory }

// Alerts returns the number of COC -> advisory transitions.
func (l *BeliefLogic) Alerts() int { return l.alerts }

// Reset clears the advisory state.
func (l *BeliefLogic) Reset() {
	l.advisory = COC
	l.alerts = 0
}

// beliefNodes are the 3-point Gauss-Hermite nodes/weights used per
// uncertain dimension.
var beliefNodes = [3]float64{-1.7320508075688772, 0, 1.7320508075688772}
var beliefWeights = [3]float64{1.0 / 6, 2.0 / 3, 1.0 / 6}

// expectedAllQ integrates the Q value of every advisory over the Gaussian
// belief centred at (tau, h, dh0, dh1), using a tensor grid of
// Gauss-Hermite nodes over the dimensions with non-zero sigma. Each belief
// node performs a single shared-weight table scan (Table.AllQValues) that
// covers the whole action set, instead of re-deriving the interpolation
// weights once per action; the accumulated values are bit-identical to the
// per-action integration.
func (l *BeliefLogic) expectedAllQ(dst *[NumAdvisories]float64, tau, h, dh0, dh1 float64, ra Advisory) {
	s := l.sigmas
	for a := range dst {
		dst[a] = 0
	}
	var node [NumAdvisories]float64
	for i, wi := range beliefWeights {
		hh := h + beliefNodes[i]*s.H
		if s.H == 0 && i != 1 {
			continue
		}
		for j, wj := range beliefWeights {
			tt := tau + beliefNodes[j]*s.Tau
			if s.Tau == 0 && j != 1 {
				continue
			}
			for k, wk := range beliefWeights {
				rr := dh1 + beliefNodes[k]*s.Rate
				if s.Rate == 0 && k != 1 {
					continue
				}
				w := wi * wj * wk
				l.table.AllQValues(&node, tt, hh, dh0, rr, ra)
				for a := 0; a < NumAdvisories; a++ {
					dst[a] += w * node[a]
				}
			}
		}
	}
	// Renormalize for skipped (zero-sigma) dimensions.
	norm := 1.0
	if s.H == 0 {
		norm *= beliefWeights[1]
	}
	if s.Tau == 0 {
		norm *= beliefWeights[1]
	}
	if s.Rate == 0 {
		norm *= beliefWeights[1]
	}
	for a := range dst {
		dst[a] /= norm
	}
}

// expectedQ integrates one action's Q value over the belief; kept as the
// per-action reference the belief equivalence test checks expectedAllQ
// against.
func (l *BeliefLogic) expectedQ(tau, h, dh0, dh1 float64, ra, a Advisory) float64 {
	s := l.sigmas
	total := 0.0
	for i, wi := range beliefWeights {
		hh := h + beliefNodes[i]*s.H
		if s.H == 0 && i != 1 {
			continue
		}
		for j, wj := range beliefWeights {
			tt := tau + beliefNodes[j]*s.Tau
			if s.Tau == 0 && j != 1 {
				continue
			}
			for k, wk := range beliefWeights {
				rr := dh1 + beliefNodes[k]*s.Rate
				if s.Rate == 0 && k != 1 {
					continue
				}
				w := wi * wj * wk
				total += w * l.table.QValue(tt, hh, dh0, rr, ra, a)
			}
		}
	}
	norm := 1.0
	if s.H == 0 {
		norm *= beliefWeights[1]
	}
	if s.Tau == 0 {
		norm *= beliefWeights[1]
	}
	if s.Rate == 0 {
		norm *= beliefWeights[1]
	}
	return total / norm
}

// Decide runs one QMDP decision cycle with the same inputs as
// Logic.Decide.
func (l *BeliefLogic) Decide(own uav.State, intrPos, intrVel geom.Vec3, mask SenseMask) Decision {
	ownVel := own.VelVec()
	h := intrPos.Z - own.Pos.Z
	dh0 := ownVel.Z
	dh1 := intrVel.Z
	tau := effectiveTau(&l.table.cfg, own.Pos, ownVel, intrPos, intrVel, h, dh0, dh1)

	prev := l.advisory
	var next Advisory
	if tau >= float64(l.table.Horizon()) {
		if prev != COC && !clearOfConflict(own.Pos, ownVel, intrPos, intrVel, l.table.cfg.DMOD) {
			next = prev
		} else {
			next = COC
		}
	} else {
		// One belief integration covers the whole action set: each node
		// queries the table once via the shared-weight scan.
		var eq [NumAdvisories]float64
		l.expectedAllQ(&eq, tau, h, dh0, dh1, prev)
		best, found := bestAllowed(&eq, mask)
		if !found {
			best = COC
		}
		if best == COC && prev != COC &&
			!clearOfConflict(own.Pos, ownVel, intrPos, intrVel, l.table.cfg.DMOD) {
			best = prev
		}
		next = best
	}
	l.advisory = next

	d := Decision{
		Advisory: next,
		Tau:      tau,
		H:        h,
		Alerting: next != COC,
	}
	if prev == COC && next != COC {
		d.NewAlert = true
		l.alerts++
	}
	if prev.Sense() != SenseNone && next.Sense() != SenseNone && prev.Sense() != next.Sense() {
		d.Reversal = true
	}
	if next.Strengthened() && !prev.Strengthened() && prev.Sense() == next.Sense() {
		d.Strengthening = true
	}
	return d
}
