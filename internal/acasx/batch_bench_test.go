package acasx

import (
	"sync"
	"testing"
)

// The lookup benchmarks run the full-resolution table (38.8 MB of float64
// slices — larger than the last-level cache, so uncorrelated queries pay
// DRAM latency) against its int16 quantized mirror (~9.7 MB, margin-gated,
// argmax-identical). The coarse test table would hide the effect the
// batch kernel exists for: it fits in L2.
var (
	benchTablesOnce  sync.Once
	benchExactTable  *Table
	benchQuantTable  *Table
	benchTablesError error
)

func benchTables(tb testing.TB) (exact, quant *Table) {
	tb.Helper()
	benchTablesOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.Workers = 8
		benchExactTable, benchTablesError = BuildTable(cfg)
		if benchTablesError != nil {
			return
		}
		cfg.Quantized = true
		benchQuantTable, benchTablesError = BuildTable(cfg)
	})
	if benchTablesError != nil {
		tb.Fatal(benchTablesError)
	}
	return benchExactTable, benchQuantTable
}

// benchBackends names the two table backends the lookup benchmarks sweep.
func benchBackends(tb testing.TB) []struct {
	name  string
	table *Table
} {
	exact, quant := benchTables(tb)
	return []struct {
		name  string
		table *Table
	}{
		{"exact", exact},
		{"quantized", quant},
	}
}

// BenchmarkAllQValuesFast measures one shared-weight advisory-vector
// lookup per op on each backend — the innermost unit of every decision
// cycle — over a domain-spanning random query stream (the worst case for
// locality; an episode's own trajectory corridor is far more correlated).
// The quantized backend's win is pure cache footprint: identical
// arithmetic shape, a quarter the bytes per gather.
func BenchmarkAllQValuesFast(b *testing.B) {
	for _, backend := range benchBackends(b) {
		b.Run(backend.name, func(b *testing.B) {
			table := backend.table
			states := randomStates(table, 4096, 51)
			var qv [NumAdvisories]float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := states[i&4095]
				table.AllQValuesFast(&qv, s.tau, s.h, s.dh0, s.dh1, Advisory(i%NumAdvisories))
			}
		})
	}
}

// BenchmarkAllQValuesBatch serves 256 gathered queries per op through the
// cell-grouped batch path on each backend, reporting per-lookup cost as
// lookups/s — the kernel the lockstep episode batch leans on. Grouping
// queries by grid cell turns the random-access gather stream into
// sequential passes over each touched table region, so the batch beats
// 256 solo AllQValuesFast calls well past 2x on the DRAM-resident exact
// table; the quantized backend stacks its smaller working set on top.
// The BENCH_<date>.json snapshots track both.
func BenchmarkAllQValuesBatch(b *testing.B) {
	const batch = 256
	for _, backend := range benchBackends(b) {
		b.Run(backend.name, func(b *testing.B) {
			table := backend.table
			states := randomStates(table, batch, 53)
			queries := make([]Query, batch)
			for i, s := range states {
				queries[i] = Query{Tau: s.tau, H: s.h, DH0: s.dh0, DH1: s.dh1, RA: Advisory(i % NumAdvisories)}
			}
			dst := make([][NumAdvisories]float64, batch)
			bounds := make([]float64, batch)
			var scratch BatchScratch
			table.AllQValuesBatch(dst, bounds, queries, &scratch) // warm the scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				table.AllQValuesBatch(dst, bounds, queries, &scratch)
			}
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
		})
	}
}
