package acasx

import (
	"fmt"
	"math"

	"acasxval/internal/interp"
)

// Quantized table backend: int16 fixed-point Q storage for cache-resident
// online lookups.
//
// The exact table stores float64 Q values slice-major and action-major
// (q[k][a*stateSize + ra*contSize + c]), which is ideal for the offline
// sweep but poor for the online executive: one AllQValues query reads 8
// cell corners x 5 advisories x 2 tau slices, and in the action-major
// layout those ~80 values live megabytes apart — with the ~40 MB default
// table every one is a DRAM miss. The quantized backend re-codes each
// slice's values as int16 with a per-slice affine codec (value ~= offset +
// scale*code) and permutes the storage to vertex-major order with the
// advisory axis innermost and the tau axis next:
//
//	qz[((c*NumAdvisories + ra)*numSlices + k)*NumAdvisories + a]
//
// so the 10 values a corner contributes to a query (5 advisories x 2
// bracketing slices) are 20 contiguous bytes. A query touches ~8 cache
// lines instead of ~80, and the whole backend is ~4x smaller (~10 MB for
// the default grid), making the hot working set close to cache-resident.
//
// Correctness contract: quantization perturbs Q values by at most the
// per-slice bound Table.qerr, so the advisory argmax can only differ from
// the exact path when the top-two margin is within that bound. Every
// consumer of quantized values goes through a margin gate
// (bestAllowedGated, or the fused-margin gate in multiCycle) that falls
// back to the retained exact slices in that case — chosen advisories are
// therefore always identical to the exact path, which keeps trajectories,
// estimates and golden artifacts bit-identical. The exact slices are
// retained for the fallback and for serialization; the file format stores
// the exact values and re-derives the codes on load, so quantization
// round-trips losslessly.

// quantRange is the symmetric int16 code range. Using 32767 (not 32768)
// keeps the codec symmetric: code = -quantRange..+quantRange.
const quantRange = 32767

// quantParams derives the affine codec of one slice: offset is the range
// midpoint, scale maps the half-range onto the int16 code range. A
// constant slice gets scale 0 (every value decodes to offset exactly).
func quantParams(vals []float64) (scale, offset float64, err error) {
	if len(vals) == 0 {
		return 0, 0, fmt.Errorf("acasx: quantize: empty slice")
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, 0, fmt.Errorf("acasx: quantize: non-finite value %v", v)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	offset = lo + (hi-lo)/2
	if hi == lo {
		return 0, offset, nil
	}
	scale = (hi - lo) / (2 * quantRange)
	return scale, offset, nil
}

// quantCode encodes one value under the codec. Codes are clamped to the
// symmetric int16 range, so even values slightly outside the derived
// range (which quantParams precludes, but a fuzzer may not) stay valid.
func quantCode(v, scale, offset float64) int16 {
	if scale == 0 {
		return 0
	}
	c := math.Round((v - offset) / scale)
	if c > quantRange {
		c = quantRange
	}
	if c < -quantRange {
		c = -quantRange
	}
	return int16(c)
}

// quantDecode decodes one code under the codec.
func quantDecode(code int16, scale, offset float64) float64 {
	return offset + scale*float64(code)
}

// Quantize installs the int16 backend, derived from the exact slices (which
// are retained for the margin-gate fallback and for serialization). It is
// idempotent; quantizing a freshly built or loaded table never changes any
// decision the executive makes (see the package comment above).
func (t *Table) Quantize() error {
	if t.qz != nil {
		return nil
	}
	numK := len(t.q)
	if numK == 0 || t.contSize == 0 {
		return fmt.Errorf("acasx: quantize: table has no slices")
	}
	stateSize := t.stateSize()
	scale := make([]float64, numK)
	offset := make([]float64, numK)
	qerr := make([]float64, numK)
	qz := make([]int16, numK*stateSize*NumAdvisories)
	for k, slice := range t.q {
		s, o, err := quantParams(slice)
		if err != nil {
			return err
		}
		scale[k], offset[k] = s, o
		maxErr := 0.0
		for c := 0; c < t.contSize; c++ {
			for ra := 0; ra < NumAdvisories; ra++ {
				src := ra*t.contSize + c
				dst := ((c*NumAdvisories+ra)*numK + k) * NumAdvisories
				for a := 0; a < NumAdvisories; a++ {
					v := slice[a*stateSize+src]
					code := quantCode(v, s, o)
					qz[dst+a] = code
					if e := math.Abs(quantDecode(code, s, o) - v); e > maxErr {
						maxErr = e
					}
				}
			}
		}
		// The gate compares interpolated values, which are convex
		// combinations of vertex values (weights are non-negative and sum
		// to 1 up to a few ULP), so the measured per-vertex bound holds for
		// every query up to floating-point noise; inflate it slightly so
		// the gate is strictly conservative.
		qerr[k] = maxErr*(1+1e-9) + 1e-9
	}
	t.qz = qz
	t.qscale, t.qoff, t.qerr = scale, offset, qerr
	t.cfg.Quantized = true
	return nil
}

// Quantized reports whether the int16 backend is installed.
func (t *Table) Quantized() bool { return t.qz != nil }

// QuantFallbacks returns how many gated decisions were re-served from the
// exact slices because the quantized top-two margin was inside the error
// bound. The counter is cumulative over the table's lifetime and safe to
// read concurrently.
func (t *Table) QuantFallbacks() uint64 { return t.fallbacks.Load() }

// QuantBytes returns the size of the int16 backend in bytes (0 when not
// quantized) — the online working set the backend substitutes for the
// 8-bytes-per-entry exact slices.
func (t *Table) QuantBytes() int { return 2 * len(t.qz) }

// gatherQuant serves one shared-weight query from the int16 backend,
// filling dst with the decoded, interpolated value of every advisory and
// returning the worst-case absolute error bound versus the exact path.
func (t *Table) gatherQuant(dst *[NumAdvisories]float64, ws []interp.VertexWeight, lo int, frac float64, ra Advisory) float64 {
	numK := len(t.qscale)
	qz := t.qz
	var acc0, acc1 [NumAdvisories]float64
	blend := frac > 0 && lo+1 < numK
	if blend {
		for _, vw := range ws {
			base := ((vw.Flat*NumAdvisories+int(ra))*numK + lo) * NumAdvisories
			w := vw.Weight
			row := qz[base : base+2*NumAdvisories : base+2*NumAdvisories]
			acc0[0] += w * float64(row[0])
			acc0[1] += w * float64(row[1])
			acc0[2] += w * float64(row[2])
			acc0[3] += w * float64(row[3])
			acc0[4] += w * float64(row[4])
			acc1[0] += w * float64(row[5])
			acc1[1] += w * float64(row[6])
			acc1[2] += w * float64(row[7])
			acc1[3] += w * float64(row[8])
			acc1[4] += w * float64(row[9])
		}
		s0, o0 := t.qscale[lo], t.qoff[lo]
		s1, o1 := t.qscale[lo+1], t.qoff[lo+1]
		for a := range dst {
			dst[a] = (1-frac)*(o0+s0*acc0[a]) + frac*(o1+s1*acc1[a])
		}
		return (1-frac)*t.qerr[lo] + frac*t.qerr[lo+1]
	}
	for _, vw := range ws {
		base := ((vw.Flat*NumAdvisories+int(ra))*numK + lo) * NumAdvisories
		w := vw.Weight
		row := qz[base : base+NumAdvisories : base+NumAdvisories]
		acc0[0] += w * float64(row[0])
		acc0[1] += w * float64(row[1])
		acc0[2] += w * float64(row[2])
		acc0[3] += w * float64(row[3])
		acc0[4] += w * float64(row[4])
	}
	s0, o0 := t.qscale[lo], t.qoff[lo]
	for a := range dst {
		dst[a] = o0 + s0*acc0[a]
	}
	return t.qerr[lo]
}

// allowedRunnerUp returns the largest value among allowed advisories other
// than best (-Inf when best is the only allowed advisory).
func allowedRunnerUp(q *[NumAdvisories]float64, mask SenseMask, best Advisory) float64 {
	second := math.Inf(-1)
	for a := COC; a < NumAdvisories; a++ {
		if a == best || !mask.Allows(a) {
			continue
		}
		if q[a] > second {
			second = q[a]
		}
	}
	return second
}

// bestAllowedGated resolves the advisory argmax of quantized values: when
// the top-two margin among allowed advisories is within twice the
// quantization error bound the exact table is consulted, so the chosen
// advisory is always the exact path's argmax. bound 0 (exact values)
// short-circuits to the plain scan.
func (t *Table) bestAllowedGated(q *[NumAdvisories]float64, bound float64, mask SenseMask,
	tau, h, dh0, dh1 float64, ra Advisory) (Advisory, bool) {
	best, ok := bestAllowed(q, mask)
	if !ok || bound == 0 {
		return best, ok
	}
	if q[best]-allowedRunnerUp(q, mask, best) > 2*bound {
		return best, ok
	}
	t.fallbacks.Add(1)
	var qe [NumAdvisories]float64
	t.AllQValues(&qe, tau, h, dh0, dh1, ra)
	return bestAllowed(&qe, mask)
}
