package acasx

import (
	"fmt"
	"strings"
)

// RenderPolicySlice draws the generated policy over the (tau, h) plane for
// fixed own/intruder vertical rates — the classic ACAS X advisory-region
// diagram. Rows are relative altitudes (top = +HMax), columns are tau
// values 0..Horizon. Cells show the advisory chosen from the COC advisory
// state:
//
//	'.' COC   '^' CL1500   'v' DES1500   'C' SCL2500   'D' SDES2500
func (t *Table) RenderPolicySlice(dh0, dh1 float64, rows int) string {
	if rows < 5 {
		rows = 21
	}
	hmax := t.cfg.Grid.HMax
	var sb strings.Builder
	fmt.Fprintf(&sb, "advisory regions at own rate %+.1f m/s, intruder rate %+.1f m/s\n", dh0, dh1)
	fmt.Fprintf(&sb, "rows: h in [%+.0f, %+.0f] m; columns: tau 0..%d s\n", hmax, -hmax, t.Horizon())
	for r := 0; r < rows; r++ {
		h := hmax - 2*hmax*float64(r)/float64(rows-1)
		fmt.Fprintf(&sb, "h %+6.0f |", h)
		for k := 0; k <= t.Horizon(); k++ {
			best, _ := t.BestAdvisory(float64(k), h, dh0, dh1, COC, SenseMask{})
			sb.WriteByte(advisoryGlyph(best))
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("legend: . COC   ^ CL1500   v DES1500   C SCL2500   D SDES2500\n")
	return sb.String()
}

func advisoryGlyph(a Advisory) byte {
	switch a {
	case Climb1500:
		return '^'
	case Descend1500:
		return 'v'
	case StrengthenClimb2500:
		return 'C'
	case StrengthenDescend2500:
		return 'D'
	default:
		return '.'
	}
}

// BestAdvisoryNearest is the nearest-neighbour variant of BestAdvisory: the
// query snaps to the closest grid vertex and integer tau slice instead of
// interpolating. Provided for the interpolation ablation (the paper's
// section IV lists interpolation of the discretized state space as a
// potential inaccuracy source).
func (t *Table) BestAdvisoryNearest(tau, h, dh0, dh1 float64, ra Advisory, mask SenseMask) (Advisory, bool) {
	if !ra.Valid() {
		return COC, false
	}
	if tau < 0 {
		tau = 0
	}
	k := int(tau + 0.5)
	if k > t.Horizon() {
		k = t.Horizon()
	}
	pt := [3]float64{h, dh0, dh1}
	flat, err := t.grid.Nearest(pt[:])
	if err != nil {
		return COC, false
	}
	best := COC
	bestQ := 0.0
	found := false
	for _, a := range Advisories() {
		if !mask.Allows(a) {
			continue
		}
		q := t.q[k][int(a)*t.stateSize()+int(ra)*t.contSize+flat]
		if !found || q > bestQ {
			bestQ = q
			best = a
			found = true
		}
	}
	return best, found
}
