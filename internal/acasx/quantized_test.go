package acasx

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

// sharedQuantTable builds the quantized coarse table once for the package:
// the identical build as getCoarseTable (Quantized is not a build input),
// plus the int16 backend.
var (
	quantOnce  sync.Once
	quantTable *Table
	quantErr   error
)

func getQuantTable(t testing.TB) *Table {
	t.Helper()
	quantOnce.Do(func() {
		cfg := CoarseConfig()
		cfg.Workers = 4
		cfg.Quantized = true
		quantTable, quantErr = BuildTable(cfg)
	})
	if quantErr != nil {
		t.Fatal(quantErr)
	}
	if !quantTable.Quantized() {
		t.Fatal("BuildTable with Quantized did not quantize")
	}
	return quantTable
}

// TestQuantizedArgmaxGolden is the quantized backend's acceptance test: on
// a golden stream of random states, BestAdvisoryFast through the quantized
// table must return the identical advisory as the exact table, for every
// advisory state and mask — the margin gate falls back to the exact slices
// whenever the quantized top-two gap cannot prove the argmax.
func TestQuantizedArgmaxGolden(t *testing.T) {
	exact := getCoarseTable(t)
	quant := getQuantTable(t)
	masks := []SenseMask{
		{},
		{BanUp: true},
		{BanDown: true},
		{BanUp: true, BanDown: true},
	}
	queries, fallsBefore := 0, quant.QuantFallbacks()
	for _, s := range randomStates(exact, 400, 23) {
		for ra := 0; ra < NumAdvisories; ra++ {
			for _, mask := range masks {
				wantBest, wantOK := exact.BestAdvisoryFast(s.tau, s.h, s.dh0, s.dh1, Advisory(ra), mask)
				gotBest, gotOK := quant.BestAdvisoryFast(s.tau, s.h, s.dh0, s.dh1, Advisory(ra), mask)
				if gotBest != wantBest || gotOK != wantOK {
					t.Fatalf("state %+v ra=%d mask=%+v: quantized (%v,%v) != exact (%v,%v)",
						s, ra, mask, gotBest, gotOK, wantBest, wantOK)
				}
				queries++
			}
		}
	}
	if falls := quant.QuantFallbacks() - fallsBefore; falls > uint64(queries)/2 {
		// The gate is only a win if it rarely engages; a majority fallback
		// rate means the error bound is useless, not merely conservative.
		t.Errorf("margin gate fell back on %d of %d queries", falls, queries)
	}
}

// TestQuantizedBound: the quantized fast values must stay within the
// reported error bound of the exact values, and AllQValues on a quantized
// table must remain bit-exact (the float64 slices are retained).
func TestQuantizedBound(t *testing.T) {
	exact := getCoarseTable(t)
	quant := getQuantTable(t)
	for _, s := range randomStates(exact, 300, 29) {
		for ra := 0; ra < NumAdvisories; ra++ {
			var ref, qx, qf [NumAdvisories]float64
			exact.AllQValues(&ref, s.tau, s.h, s.dh0, s.dh1, Advisory(ra))
			quant.AllQValues(&qx, s.tau, s.h, s.dh0, s.dh1, Advisory(ra))
			bound := quant.AllQValuesFast(&qf, s.tau, s.h, s.dh0, s.dh1, Advisory(ra))
			if bound <= 0 {
				t.Fatalf("state %+v ra=%d: non-positive bound %v from a quantized table", s, ra, bound)
			}
			for a := 0; a < NumAdvisories; a++ {
				if math.Float64bits(qx[a]) != math.Float64bits(ref[a]) {
					t.Fatalf("state %+v ra=%d a=%d: quantized table's AllQValues drifted: %v != %v",
						s, ra, a, qx[a], ref[a])
				}
				if err := math.Abs(qf[a] - ref[a]); err > bound {
					t.Fatalf("state %+v ra=%d a=%d: quantized error %v exceeds bound %v",
						s, ra, a, err, bound)
				}
			}
		}
	}
}

// TestQuantizedFastExactDelegation: on an unquantized table AllQValuesFast
// is the exact path with a zero bound.
func TestQuantizedFastExactDelegation(t *testing.T) {
	exact := getCoarseTable(t)
	for _, s := range randomStates(exact, 50, 31) {
		var ref, fast [NumAdvisories]float64
		exact.AllQValues(&ref, s.tau, s.h, s.dh0, s.dh1, COC)
		if bound := exact.AllQValuesFast(&fast, s.tau, s.h, s.dh0, s.dh1, COC); bound != 0 {
			t.Fatalf("exact table reported bound %v", bound)
		}
		if fast != ref {
			t.Fatalf("exact delegation drifted: %v != %v", fast, ref)
		}
	}
}

// TestQuantizedSerializeRoundTrip: a quantized table survives WriteTo /
// ReadTable with its flag, its exact slices, and (re-derived) identical
// int16 codes — the file stores the lossless float64 payload.
func TestQuantizedSerializeRoundTrip(t *testing.T) {
	quant := getQuantTable(t)
	var buf bytes.Buffer
	if _, err := quant.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Config().Quantized || !loaded.Quantized() {
		t.Fatal("round trip lost the quantized backend")
	}
	if got, want := loaded.QuantBytes(), quant.QuantBytes(); got != want {
		t.Fatalf("quantized size drifted: %d != %d", got, want)
	}
	for _, s := range randomStates(quant, 100, 37) {
		for ra := 0; ra < NumAdvisories; ra++ {
			var a, b [NumAdvisories]float64
			ba := quant.AllQValuesFast(&a, s.tau, s.h, s.dh0, s.dh1, Advisory(ra))
			bb := loaded.AllQValuesFast(&b, s.tau, s.h, s.dh0, s.dh1, Advisory(ra))
			if a != b || math.Float64bits(ba) != math.Float64bits(bb) {
				t.Fatalf("state %+v ra=%d: reloaded quantized lookup drifted", s, ra)
			}
		}
	}
}

// TestQuantizeIdempotent: quantizing twice is a no-op, and the accessors
// report a sensible backend.
func TestQuantizeIdempotent(t *testing.T) {
	cfg := tinyConfig()
	table, err := BuildTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if table.Quantized() || table.QuantBytes() != 0 {
		t.Fatal("fresh table claims a quantized backend")
	}
	if err := table.Quantize(); err != nil {
		t.Fatal(err)
	}
	if !table.Quantized() || table.QuantBytes() == 0 {
		t.Fatal("Quantize did not install the backend")
	}
	size := table.QuantBytes()
	if err := table.Quantize(); err != nil {
		t.Fatal(err)
	}
	if table.QuantBytes() != size {
		t.Fatal("re-quantizing changed the backend")
	}
	// ~4x smaller than the float64 slices it mirrors.
	exactBytes := table.NumEntries() * 8
	if table.QuantBytes()*3 > exactBytes {
		t.Fatalf("quantized backend %d B is not ~4x below exact %d B", table.QuantBytes(), exactBytes)
	}
}

// FuzzQuantCodec fuzzes the per-slice affine codec: for any finite slice,
// every value must round-trip through its int16 code within half a
// quantization step (plus clamp slack at the extremes), and a constant
// slice must round-trip exactly.
func FuzzQuantCodec(f *testing.F) {
	f.Add(-10.0, 10.0, 0.25)
	f.Add(0.0, 0.0, 0.0)
	f.Add(-1e-12, 1e-12, 0.0)
	f.Add(-12345.678, 0.001, -3.5)
	f.Fuzz(func(t *testing.T, a, b, c float64) {
		vals := []float64{a, b, c}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				if _, _, err := quantParams(vals); err == nil {
					t.Fatal("quantParams accepted a non-finite slice")
				}
				return
			}
		}
		scale, offset, err := quantParams(vals)
		if err != nil {
			t.Fatal(err)
		}
		if scale == 0 {
			for _, v := range vals {
				if got := quantDecode(quantCode(v, scale, offset), scale, offset); got != offset {
					t.Fatalf("constant slice: decode %v != offset %v", got, offset)
				}
			}
			return
		}
		// Half a step of rounding, with slack for the decode arithmetic.
		limit := scale*0.5*(1+1e-9) + 1e-9*math.Abs(offset) + 1e-300
		for _, v := range vals {
			code := quantCode(v, scale, offset)
			if code > quantRange || code < -quantRange {
				t.Fatalf("code %d outside +-%d", code, quantRange)
			}
			if err := math.Abs(quantDecode(code, scale, offset) - v); err > limit {
				t.Fatalf("value %v: round-trip error %v exceeds %v (scale %v)", v, err, limit, scale)
			}
		}
	})
}

// TestAllQValuesBatchGolden: the batch serve must be bit-identical to
// per-query AllQValuesFast — values and bounds — on both backends, with
// invalid advisory states handled in place.
func TestAllQValuesBatchGolden(t *testing.T) {
	for _, tc := range []struct {
		name  string
		table func(t testing.TB) *Table
	}{
		{"exact", getCoarseTable},
		{"quantized", getQuantTable},
	} {
		t.Run(tc.name, func(t *testing.T) {
			table := tc.table(t)
			states := randomStates(table, 257, 41)
			queries := make([]Query, len(states))
			for i, s := range states {
				ra := Advisory(i % (NumAdvisories + 1)) // one in six invalid
				queries[i] = Query{Tau: s.tau, H: s.h, DH0: s.dh0, DH1: s.dh1, RA: ra}
			}
			dst := make([][NumAdvisories]float64, len(queries))
			bounds := make([]float64, len(queries))
			var scratch BatchScratch
			table.AllQValuesBatch(dst, bounds, queries, &scratch)
			for i, q := range queries {
				var want [NumAdvisories]float64
				wantBound := table.AllQValuesFast(&want, q.Tau, q.H, q.DH0, q.DH1, q.RA)
				if !q.RA.Valid() {
					wantBound = 0
					for a := range want {
						want[a] = math.Inf(-1)
					}
				}
				for a := range want {
					if math.Float64bits(dst[i][a]) != math.Float64bits(want[a]) {
						t.Fatalf("query %d advisory %d: batch %v != solo %v", i, a, dst[i][a], want[a])
					}
				}
				if math.Float64bits(bounds[i]) != math.Float64bits(wantBound) {
					t.Fatalf("query %d: batch bound %v != solo %v", i, bounds[i], wantBound)
				}
			}
			// Second serve through the same scratch: the reuse path must not
			// leak state between batches.
			table.AllQValuesBatch(dst[:7], bounds[:7], queries[:7], &scratch)
			for i, q := range queries[:7] {
				var want [NumAdvisories]float64
				table.AllQValuesFast(&want, q.Tau, q.H, q.DH0, q.DH1, q.RA)
				if q.RA.Valid() && dst[i] != want {
					t.Fatalf("reused scratch query %d drifted", i)
				}
			}
		})
	}
}
