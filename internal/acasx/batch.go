package acasx

import (
	"math"
	"sort"

	"acasxval/internal/interp"
)

// Query is one pending shared-weight table lookup: the MDP state of a
// decision cycle split by Logic.BeginDecide, to be served (possibly
// batched and cell-grouped) and completed by Logic.FinishDecide.
type Query struct {
	Tau, H, DH0, DH1 float64
	RA               Advisory
}

// BatchScratch is the reusable working state of AllQValuesBatch. The zero
// value is ready to use; at a steady batch size it allocates nothing.
type BatchScratch struct {
	ws    []interp.VertexWeight
	ends  []int
	pts   []float64
	keys  []int64
	order []int
}

// Len/Less/Swap sort the query order by cell key; implementing
// sort.Interface on the scratch itself keeps the sort allocation-free.
func (s *BatchScratch) Len() int { return len(s.order) }
func (s *BatchScratch) Less(i, j int) bool {
	// Ties resolve by query index so the processing order is
	// deterministic (the results do not depend on it — every query is
	// independent — but deterministic cache behavior keeps benchmarks
	// honest).
	ki, kj := s.keys[s.order[i]], s.keys[s.order[j]]
	if ki != kj {
		return ki < kj
	}
	return s.order[i] < s.order[j]
}
func (s *BatchScratch) Swap(i, j int) { s.order[i], s.order[j] = s.order[j], s.order[i] }

// grow resets the scratch for n queries.
func (s *BatchScratch) grow(n int) {
	s.ws = s.ws[:0]
	s.ends = s.ends[:0]
	if cap(s.pts) < 3*n {
		s.pts = make([]float64, 0, 3*n)
		s.keys = make([]int64, 0, n)
		s.order = make([]int, 0, n)
	}
	s.pts = s.pts[:0]
	s.keys = s.keys[:0]
	s.order = s.order[:0]
}

// AllQValuesBatch serves a batch of shared-weight queries: dst[i] receives
// the advisory values of queries[i] and bounds[i] its quantization error
// bound (0 on the exact path), exactly as AllQValuesFast would produce
// them — every query is computed with the identical arithmetic, so the
// batch is bit-identical to serving the queries one at a time. The batch
// exists for locality: queries are grouped by enclosing grid cell (and
// bracketing tau slice) before the gathers run, so a batch of episodes in
// nearby states touches each table region once instead of striding the
// whole table once per episode.
//
// dst and bounds must have len(queries) entries; scratch must not be nil.
func (t *Table) AllQValuesBatch(dst [][NumAdvisories]float64, bounds []float64, queries []Query, scratch *BatchScratch) {
	n := len(queries)
	scratch.grow(n)
	for i := range queries {
		scratch.pts = append(scratch.pts, queries[i].H, queries[i].DH0, queries[i].DH1)
	}
	var err error
	scratch.ws, scratch.ends, err = t.grid.WeightsAppendBatch(scratch.ws, scratch.ends, scratch.pts)
	if err != nil {
		// The grid is 3-dimensional and the points are packed 3-wide by
		// construction; the only failure mode is a programming error.
		panic(err)
	}
	numK := len(t.q)
	for i := range queries {
		start := 0
		if i > 0 {
			start = scratch.ends[i-1]
		}
		lo, _ := t.clampTau(queries[i].Tau)
		// The span's first record is the all-lower cell corner: its flat
		// index identifies the enclosing cell, and with the bracketing
		// slice appended it is the locality sort key.
		scratch.keys = append(scratch.keys, int64(scratch.ws[start].Flat)*int64(numK)+int64(lo))
		scratch.order = append(scratch.order, i)
	}
	sort.Sort(scratch)
	for _, i := range scratch.order {
		q := &queries[i]
		if !q.RA.Valid() {
			for a := range dst[i] {
				dst[i][a] = math.Inf(-1)
			}
			bounds[i] = 0
			continue
		}
		start := 0
		if i > 0 {
			start = scratch.ends[i-1]
		}
		ws := scratch.ws[start:scratch.ends[i]]
		lo, frac := t.clampTau(q.Tau)
		if t.qz != nil {
			bounds[i] = t.gatherQuant(&dst[i], ws, lo, frac, q.RA)
			continue
		}
		bounds[i] = 0
		t.gatherExact(&dst[i], ws, lo, frac, q.RA)
	}
}

// gatherExact is the shared-weight exact gather of AllQValues, factored so
// the batch path reuses precomputed weight spans with the identical
// arithmetic (and therefore bit-identical results).
func (t *Table) gatherExact(dst *[NumAdvisories]float64, ws []interp.VertexWeight, lo int, frac float64, ra Advisory) {
	raOff := int(ra) * t.contSize
	stateSize := t.stateSize()
	qlo := t.q[lo]
	for a := 0; a < NumAdvisories; a++ {
		dst[a] = dotGather(ws, qlo, a*stateSize+raOff)
	}
	if frac > 0 && lo+1 <= t.Horizon() {
		qhi := t.q[lo+1]
		for a := 0; a < NumAdvisories; a++ {
			dst[a] = dst[a]*(1-frac) + frac*dotGather(ws, qhi, a*stateSize+raOff)
		}
	}
}
