package acasx

import (
	"math"

	"acasxval/internal/geom"
	"acasxval/internal/uav"
)

// Multi-threat resolution: the executives below generalize the pairwise
// Decide cycle to K simultaneous intruders. Each threat inside the
// optimization horizon is queried against the logic table independently
// (the table itself stays pairwise — it was optimized for one intruder),
// and the per-threat action values fuse worst-case-first: an advisory's
// fused value is its minimum value across the threats, and the executive
// picks the advisory whose worst case is best. The most restrictive
// constraint therefore dominates — an advisory that resolves two threats
// but flies into a third is vetoed by the third's value — which is the
// "most-restrictive-first" fusion rule of layered multi-threat logics.
//
// A single-track call delegates to the pairwise Decide, so K = 1 is
// bit-identical to the classic executive by construction.

// bestAllowed returns the advisory maximizing q among those the mask
// allows, scanning in advisory order exactly like BestAdvisoryFast (first
// maximum wins). The boolean is false when the mask bans every action.
func bestAllowed(q *[NumAdvisories]float64, mask SenseMask) (Advisory, bool) {
	best := COC
	bestQ := math.Inf(-1)
	found := false
	for a := COC; a < NumAdvisories; a++ {
		if !mask.Allows(a) {
			continue
		}
		if q[a] > bestQ {
			bestQ = q[a]
			best = a
			found = true
		}
	}
	return best, found
}

// clearOfAll reports whether every tracked intruder is horizontally
// diverging and outside the conflict radius — the multi-threat condition
// for discontinuing an active advisory.
func clearOfAll(ownPos, ownVel geom.Vec3, tracks []geom.Track, dmod float64) bool {
	for _, tr := range tracks {
		if !clearOfConflict(ownPos, ownVel, tr.Pos, tr.Vel, dmod) {
			return false
		}
	}
	return true
}

// multiCycle is the shared multi-threat decision cycle of both executives:
// scan every track, fuse the in-horizon action values worst-case-first
// (query fills q with one threat's values), apply the clear-of-conflict
// hold hysteresis, and assemble the Decision against prev. The caller owns
// its advisory state and counters, and supplies q — a persistent scratch
// buffer, because a stack array crossing the indirect query call would
// escape and allocate every cycle. query is called with the per-threat
// (tau, h, intruder vertical speed); it must not retain q.
func multiCycle(table *Table, prev Advisory, own uav.State, ownVel geom.Vec3, tracks []geom.Track, mask SenseMask,
	q *[NumAdvisories]float64, query func(q *[NumAdvisories]float64, tau, h, intrVS float64) float64,
	exactQuery func(q *[NumAdvisories]float64, tau, h, intrVS float64)) Decision {
	var fused [NumAdvisories]float64
	threats := 0
	minTau, minH := math.Inf(1), 0.0
	maxBound := 0.0
	horizon := float64(table.Horizon())
	for _, tr := range tracks {
		h := tr.Pos.Z - own.Pos.Z
		tau := effectiveTau(&table.cfg, own.Pos, ownVel, tr.Pos, tr.Vel, h, ownVel.Z, tr.Vel.Z)
		if tau < minTau {
			minTau, minH = tau, h
		}
		if tau >= horizon {
			continue
		}
		if b := query(q, tau, h, tr.Vel.Z); b > maxBound {
			maxBound = b
		}
		if threats == 0 {
			fused = *q
		} else {
			for a := range fused {
				if q[a] < fused[a] {
					fused[a] = q[a]
				}
			}
		}
		threats++
	}

	if threats > 0 && maxBound > 0 && exactQuery != nil {
		// Fused margin gate: every fused value is within maxBound of its
		// exact counterpart (min over per-threat values each within the
		// bound), so a top-two margin above 2*maxBound proves the argmax
		// matches the exact path. Inside the margin, redo the whole scan
		// on the exact slices — the fallback is rare and the rescan is
		// pure recomputation, so decisions stay identical to the exact
		// executive in every case.
		if best, ok := bestAllowed(&fused, mask); ok &&
			fused[best]-allowedRunnerUp(&fused, mask, best) <= 2*maxBound {
			table.fallbacks.Add(1)
			threats = 0
			for _, tr := range tracks {
				h := tr.Pos.Z - own.Pos.Z
				tau := effectiveTau(&table.cfg, own.Pos, ownVel, tr.Pos, tr.Vel, h, ownVel.Z, tr.Vel.Z)
				if tau >= horizon {
					continue
				}
				exactQuery(q, tau, h, tr.Vel.Z)
				if threats == 0 {
					fused = *q
				} else {
					for a := range fused {
						if q[a] < fused[a] {
							fused[a] = q[a]
						}
					}
				}
				threats++
			}
		}
	}

	var next Advisory
	if threats == 0 {
		// No threat inside the horizon: hold an active advisory until the
		// traffic is genuinely clear, as the pairwise executives do.
		if prev != COC && !clearOfAll(own.Pos, ownVel, tracks, table.cfg.DMOD) {
			next = prev
		} else {
			next = COC
		}
	} else {
		best, ok := bestAllowed(&fused, mask)
		if !ok {
			best = COC
		}
		if best == COC && prev != COC && !clearOfAll(own.Pos, ownVel, tracks, table.cfg.DMOD) {
			// The fused values propose terminating the advisory, but some
			// intruder is still converging: hold, mirroring the pairwise
			// clear-of-conflict hysteresis.
			best = prev
		}
		next = best
	}

	d := Decision{
		Advisory: next,
		Tau:      minTau,
		H:        minH,
		Alerting: next != COC,
	}
	if prev == COC && next != COC {
		d.NewAlert = true
	}
	if prev.Sense() != SenseNone && next.Sense() != SenseNone && prev.Sense() != next.Sense() {
		d.Reversal = true
	}
	if next.Strengthened() && !prev.Strengthened() && prev.Sense() == next.Sense() {
		d.Strengthening = true
	}
	return d
}

// DecideMulti runs one decision cycle against every tracked intruder,
// fusing the per-threat table queries worst-case-first (see the package
// comment above). tracks must hold at least one entry; a single track is
// bit-identical to Decide. The reported Tau and H are those of the most
// urgent threat (smallest effective tau, first index on ties).
func (l *Logic) DecideMulti(own uav.State, tracks []geom.Track, mask SenseMask) Decision {
	if len(tracks) == 1 {
		return l.Decide(own, tracks[0].Pos, tracks[0].Vel, mask)
	}
	l.decisions++
	ownVel := own.VelVec()
	prev := l.advisory
	d := multiCycle(l.table, prev, own, ownVel, tracks, mask, &l.multiQ,
		func(q *[NumAdvisories]float64, tau, h, intrVS float64) float64 {
			return l.table.AllQValuesFast(q, tau, h, ownVel.Z, intrVS, prev)
		},
		func(q *[NumAdvisories]float64, tau, h, intrVS float64) {
			l.table.AllQValues(q, tau, h, ownVel.Z, intrVS, prev)
		})
	l.advisory = d.Advisory
	if d.NewAlert {
		l.alerts++
	}
	if d.Reversal {
		l.reversals++
	}
	return d
}

// DecideMulti runs one QMDP decision cycle against every tracked intruder:
// each threat's belief-integrated action values fuse worst-case-first
// exactly like Logic.DecideMulti. A single track is bit-identical to the
// pairwise Decide.
func (l *BeliefLogic) DecideMulti(own uav.State, tracks []geom.Track, mask SenseMask) Decision {
	if len(tracks) == 1 {
		return l.Decide(own, tracks[0].Pos, tracks[0].Vel, mask)
	}
	ownVel := own.VelVec()
	prev := l.advisory
	// The belief executive integrates over state particles and is exact by
	// design: the query wrapper reports a zero bound and the gate never
	// engages (nil exact rescan).
	d := multiCycle(l.table, prev, own, ownVel, tracks, mask, &l.multiQ,
		func(q *[NumAdvisories]float64, tau, h, intrVS float64) float64 {
			l.expectedAllQ(q, tau, h, ownVel.Z, intrVS, prev)
			return 0
		},
		nil)
	l.advisory = d.Advisory
	if d.NewAlert {
		l.alerts++
	}
	return d
}
