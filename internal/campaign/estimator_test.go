package campaign

import (
	"bytes"
	"strings"
	"testing"

	"acasxval/internal/config"
	"acasxval/internal/encounter"
	"acasxval/internal/montecarlo"
)

// estimatorSpecText declares a campaign mixing a classic preset grid with a
// full rare-event estimator axis.
const estimatorSpecText = `
campaign.name = estimators
campaign.presets = headon
campaign.systems = none
campaign.samples = 60
campaign.seed = 7
campaign.estimator.methods = bruteforce,is,split
campaign.estimator.defensive = 0.3
campaign.estimator.bandwidth = 0.02
campaign.estimator.levels = 300,160
campaign.estimator.moves = 2
campaign.estimator.kernel.0 = 40,0,30,50,1.5,-10,40,3.0,0
campaign.estimator.kernel.1 = 45,1,25,100,4.0,15,35,1.0,-1
`

func estimatorSpec(t *testing.T) Spec {
	t.Helper()
	c, err := config.Parse(estimatorSpecText)
	if err != nil {
		t.Fatal(err)
	}
	s, err := FromConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestEstimatorAxis runs the mixed campaign and checks the estimator cells'
// placement, record shape, and exclusion from the classic summaries.
func TestEstimatorAxis(t *testing.T) {
	spec := estimatorSpec(t)
	if want := []string{"bruteforce", "is", "split"}; len(spec.Estimators) != len(want) {
		t.Fatalf("estimator axis %v, want %v", spec.Estimators, want)
	}
	if len(spec.EstimatorSpec.Kernels) != 2 {
		t.Fatalf("decoded %d kernels, want 2", len(spec.EstimatorSpec.Kernels))
	}
	var out bytes.Buffer
	res, err := Run(spec, DefaultSystems(nil), &out)
	if err != nil {
		t.Fatal(err)
	}
	// 1 preset + 3 estimator cells, one system, one variant.
	if len(res.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(res.Cells))
	}
	if c := res.Cells[0]; c.Estimator != "" || c.Scenario != "headon" {
		t.Errorf("classic cell perturbed by estimator axis: %+v", c)
	}
	for i, want := range []string{"bruteforce", "is", "split"} {
		c := res.Cells[1+i]
		if c.Estimator != want || c.Scenario != estimatorScenario {
			t.Fatalf("cell %d: estimator %q scenario %q, want %q under %q",
				c.Index, c.Estimator, c.Scenario, want, estimatorScenario)
		}
		if len(c.Params) != 0 {
			t.Errorf("estimator cell %q carries a params vector", want)
		}
		if c.ESS <= 0 {
			t.Errorf("estimator cell %q: ESS %v, want > 0", want, c.ESS)
		}
		if c.PNMAC < 0 || c.PNMAC > 1 || c.PNMACHi < c.PNMACLo {
			t.Errorf("estimator cell %q: implausible estimate %+v", want, c)
		}
	}
	// The brute-force estimator point is exactly the plain evaluator.
	if c := res.Cells[1]; c.VarianceReduction != 1 || c.Samples != 60 {
		t.Errorf("bruteforce estimator cell: VRF %v samples %d, want 1 and 60", c.VarianceReduction, c.Samples)
	}
	// Classic summaries pool only the fixed-scenario cells.
	for _, s := range res.Summaries {
		if s.Cells != 1 || s.Samples != 60 {
			t.Errorf("summary pooled estimator cells: %+v", s)
		}
	}
	table := res.SummaryTable()
	if !strings.Contains(table, "rare-event estimates") {
		t.Errorf("summary table missing the estimator section:\n%s", table)
	}
	for _, m := range []string{"bruteforce", "is", "split"} {
		if !strings.Contains(table, m) {
			t.Errorf("summary table missing estimator %q:\n%s", m, table)
		}
	}
}

// TestEstimatorAxisDeterministic: the estimator cells — importance sampling
// and splitting included — produce byte-identical JSONL at any parallelism.
func TestEstimatorAxisDeterministic(t *testing.T) {
	systems := DefaultSystems(nil)
	var streams []string
	for _, par := range []int{1, 8} {
		spec := estimatorSpec(t)
		spec.Parallelism = par
		var out bytes.Buffer
		if _, err := Run(spec, systems, &out); err != nil {
			t.Fatal(err)
		}
		streams = append(streams, out.String())
	}
	if streams[0] != streams[1] {
		t.Errorf("JSONL differs across parallelism:\n%s\nvs\n%s", streams[0], streams[1])
	}
}

// TestModelPriorKeys: campaign.model.hmd / .vmd replace the statistical
// model's CPA miss-distance priors with uniform intervals, and malformed
// pairs are rejected.
func TestModelPriorKeys(t *testing.T) {
	base := "campaign.name = x\ncampaign.presets = headon\ncampaign.systems = none\n"
	c, err := config.Parse(base + "campaign.model.hmd = 0, 8000\ncampaign.model.vmd = -400, 400\n")
	if err != nil {
		t.Fatal(err)
	}
	s, err := FromConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.Model == nil {
		t.Fatal("model prior keys left spec.Model nil")
	}
	if got := s.Model.Ranges.HorizontalMissDistance; got.Min != 0 || got.Max != 8000 {
		t.Errorf("hmd range %+v, want [0, 8000]", got)
	}
	if got := s.Model.Ranges.VerticalMissDistance; got.Min != -400 || got.Max != 400 {
		t.Errorf("vmd range %+v, want [-400, 400]", got)
	}
	if err := s.Model.Validate(); err != nil {
		t.Errorf("widened model invalid: %v", err)
	}
	for _, bad := range []string{
		"campaign.model.hmd = 8000\n",
		"campaign.model.hmd = 10, 10\n",
		"campaign.model.vmd = 400, -400\n",
		"campaign.model.hmd = a, b\n",
	} {
		c, err := config.Parse(base + bad)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := FromConfig(c); err == nil {
			t.Errorf("malformed prior accepted: %q", bad)
		}
	}
}

// TestEstimatorConfigErrors covers the strict estimator key validation and
// the reserved scenario name.
func TestEstimatorConfigErrors(t *testing.T) {
	parse := func(text string) error {
		c, err := config.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		_, err = FromConfig(c)
		return err
	}
	base := "campaign.name = x\ncampaign.presets = headon\ncampaign.systems = none\n"
	if err := parse(base + "campaign.estimator.method = is\n"); err == nil ||
		!strings.Contains(err.Error(), "campaign.estimator.methods") {
		t.Errorf("singular method key accepted: %v", err)
	}
	if err := parse(base + "campaign.estimator.defensive = 0.5\n"); err == nil ||
		!strings.Contains(err.Error(), "orphaned") {
		t.Errorf("orphaned estimator tuning accepted: %v", err)
	}
	if err := parse(base + "campaign.estimator.methods = is\ncampaign.estimator.bogus = 1\n"); err == nil ||
		!strings.Contains(err.Error(), "unknown estimator key") {
		t.Errorf("unknown estimator key accepted: %v", err)
	}
	if err := parse(base + "campaign.estimator.methods = warp\n"); err == nil {
		t.Error("unknown estimator method accepted")
	}
	if err := parse(base + "campaign.estimator.methods = is,is\n"); err == nil {
		t.Error("duplicate estimator method accepted")
	}
	headon, err := encounter.MultiPreset("headon")
	if err != nil {
		t.Fatal(err)
	}
	spec := DefaultSpec()
	spec.Presets = nil
	spec.Scenarios = []Scenario{{Name: estimatorScenario, Params: headon}}
	spec.Estimators = []string{montecarlo.MethodIS}
	if err := spec.Validate(); err == nil ||
		!strings.Contains(err.Error(), "reserved") {
		t.Errorf("reserved scenario name accepted: %v", err)
	}
}
