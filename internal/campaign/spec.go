// Package campaign implements the declarative sweep engine for large-scale
// scenario validation. The paper's central argument is that a model-optimized
// collision avoidance system cannot be trusted on the strength of single
// scenario checks (the Fig. 5 head-on, the Figs. 7-8 tail approaches); it has
// to be exercised against *many* encounters, systems and configurations. A
// campaign is the cross-product of
//
//   - scenarios: named encounter presets and/or draws from a statistical
//     encounter model,
//   - systems: unequipped baseline, ACAS XU table logic, the belief-weighted
//     executive, the SVO baseline,
//   - variants: run-configuration and sample-count variations (coordination
//     on/off, tracker on/off, decision rate, ...),
//
// fanned out over a deterministic seed-derived worker pool. Each cell of the
// product replays one fixed scenario through the Monte-Carlo harness (the
// stochastic dynamics and sensor noise still vary per sample), streams a
// JSONL record, and feeds an aggregate summary that ranks systems by risk
// ratio against the unequipped baseline.
//
// Campaigns are files, not flags: Spec parses from the same ECJ-style
// parameter format that drives the GA search (see FromConfig), so a sweep is
// checked in, versioned, and reproducible byte-for-byte under its seed.
package campaign

import (
	"fmt"
	"strconv"
	"strings"

	"acasxval/internal/config"
	"acasxval/internal/encounter"
	"acasxval/internal/fault"
	"acasxval/internal/montecarlo"
	"acasxval/internal/sim"
	"acasxval/internal/stats"
)

// FaultPoint is one point of the campaign's fault axis: a named
// surveillance-degradation profile crossed against every scenario,
// system and variant. The conventional name for the zero profile is
// "none"; cells under it serialize without a fault field and are
// byte-identical to a campaign with no fault axis at all.
type FaultPoint struct {
	// Name labels the point in cell records and summaries.
	Name string
	// Profile is the degradation applied to every run of the point's
	// cells.
	Profile fault.Profile
}

// label returns the name recorded in cell results: empty for a disabled
// profile, so unfaulted sweeps keep their historical byte stream.
func (fp FaultPoint) label() string {
	if !fp.Profile.Enabled() {
		return ""
	}
	return fp.Name
}

// Variant is one run-configuration axis point: a named set of overrides
// applied on top of the campaign's base RunConfig. Nil pointer fields
// inherit the base value.
type Variant struct {
	// Name labels the variant in cell records and summaries.
	Name string
	// Samples overrides the campaign's per-cell sample count (0 inherits).
	Samples int
	// Coordination toggles maneuver-sense coordination.
	Coordination *bool
	// UseTracker toggles alpha-beta filtering of the received track.
	UseTracker *bool
	// DecisionPeriod overrides the decision interval, seconds.
	DecisionPeriod *float64
	// Overtime overrides the post-CPA simulated overtime, seconds.
	Overtime *float64
}

// apply returns the base configuration with the variant's overrides set.
func (v Variant) apply(base sim.RunConfig) sim.RunConfig {
	if v.Coordination != nil {
		base.Coordination = *v.Coordination
	}
	if v.UseTracker != nil {
		base.UseTracker = *v.UseTracker
	}
	if v.DecisionPeriod != nil {
		base.DecisionPeriod = *v.DecisionPeriod
	}
	if v.Overtime != nil {
		base.Overtime = *v.Overtime
	}
	return base
}

// samples returns the variant's effective per-cell sample count.
func (v Variant) samples(base int) int {
	if v.Samples > 0 {
		return v.Samples
	}
	return base
}

// Scenario is one explicit fixed encounter scenario: a name and the
// encounter parameters of its one-ownship, K-intruder geometry (a classic
// pairwise scenario is the K = 1 case — wrap its Params with
// encounter.Params.Multi). Explicit scenarios let a campaign replay
// encounters that are not shipped presets — most importantly the entries
// of a danger archive written by the adversarial search engine, closing
// the sweep -> search -> archive -> sweep loop.
type Scenario struct {
	// Name labels the scenario in cell records (must be unique across the
	// campaign's scenario axis).
	Name string
	// Params are the encounter parameters replayed by the scenario.
	Params encounter.MultiParams
}

// Spec declares a campaign: which scenarios to run, against which systems,
// under which configuration variants.
type Spec struct {
	// Name labels the campaign in its output records.
	Name string

	// Presets are named encounter presets: the pairwise names
	// (encounter.PresetNames) and/or the multi-intruder names
	// (encounter.MultiPresetNames), resolved through encounter.MultiPreset
	// so one axis mixes both.
	Presets []string
	// Scenarios are explicit fixed scenarios appended after the presets
	// (typically reloaded danger-archive entries).
	Scenarios []Scenario
	// ModelDraws adds this many scenarios sampled from Model. Draws are
	// seed-derived, so the same spec always sweeps the same scenarios.
	ModelDraws int
	// Model is the statistical encounter model sampled for ModelDraws.
	// The zero value means the default UAV airspace model.
	Model *montecarlo.EncounterModel
	// Intruders is the intruder count K of each model-draw scenario
	// (0 or 1 keeps the classic pairwise draws; presets and explicit
	// scenarios carry their own K).
	Intruders int

	// Systems are the collision avoidance systems under test, by name
	// (see DefaultSystems; the sys registry lists the valid names).
	Systems []string

	// Variants are the run-configuration axis. Empty means a single
	// implicit "default" variant.
	Variants []Variant

	// Faults is the surveillance-degradation axis, crossed against
	// preset x system x variant like variants are. Empty means a single
	// implicit point: the zero profile, or Run.Faults when the base run
	// configuration already carries one (the facade pass-through).
	// Fault points deliberately do not enter the cell-seed identity, so
	// every severity level replays the same episode seeds as its clean
	// sibling — severity comparisons are paired, and an axis of just
	// "none" is byte-identical to no axis at all.
	Faults []FaultPoint

	// Estimators is the rare-event estimator axis: each named method
	// (montecarlo.Methods) re-estimates P(NMAC) under the statistical
	// encounter model itself — not a fixed scenario — for every system,
	// variant and fault point. Estimator cells are appended after the
	// classic fixed-scenario grid under the reserved scenario name
	// "model", so declaring the axis never perturbs existing cell bytes.
	// Empty means no estimator cells.
	Estimators []string
	// EstimatorSpec carries the shared estimator tuning — archive kernels,
	// defensive weight, splitting ladder — applied to every Estimators
	// point; its Method field is overridden by each point's name.
	EstimatorSpec montecarlo.RareEventSpec

	// Samples is the per-cell simulation count (noise seeds vary per
	// sample; default 10).
	Samples int
	// Run is the base simulation configuration variants derive from.
	Run sim.RunConfig
	// Seed makes the whole campaign reproducible: scenario draws, per-cell
	// sampling, and dynamics seeds all derive from it.
	Seed uint64
	// Parallelism bounds concurrent cells (0 = NumCPU; values above the
	// CPU count are clamped to it, matching the offline solver's worker
	// pool — campaign cells are CPU-bound, so extra workers only thrash).
	Parallelism int
	// BatchSize sets each cell evaluator's lockstep episode batch (0 =
	// classic per-episode loop). Like Parallelism it is a scheduling-only
	// knob: the batched kernel is bit-identical to the per-episode path,
	// so the estimates cannot depend on it.
	BatchSize int
}

// DefaultSpec returns a campaign skeleton: all named presets against the
// unequipped baseline, 10 samples per cell, the paper-style run
// configuration, seed 1.
func DefaultSpec() Spec {
	return Spec{
		Name:    "campaign",
		Presets: encounter.PresetNames(),
		Systems: []string{"none"},
		Samples: 10,
		Run:     sim.DefaultRunConfig(),
		Seed:    1,
	}
}

// variantsOrDefault returns the variant axis, inserting the implicit
// "default" variant when none are declared.
func (s Spec) variantsOrDefault() []Variant {
	if len(s.Variants) == 0 {
		return []Variant{{Name: "default"}}
	}
	return s.Variants
}

// faultsOrDefault returns the fault axis, inserting the implicit single
// point when none is declared: the base run configuration's profile
// (named "base") when it is enabled, the zero "none" profile otherwise.
func (s Spec) faultsOrDefault() []FaultPoint {
	if len(s.Faults) == 0 {
		if s.Run.Faults.Enabled() {
			return []FaultPoint{{Name: "base", Profile: s.Run.Faults}}
		}
		return []FaultPoint{{Name: "none"}}
	}
	return s.Faults
}

// model returns the encounter model sampled for ModelDraws.
func (s Spec) model() montecarlo.EncounterModel {
	if s.Model != nil {
		return *s.Model
	}
	return montecarlo.DefaultEncounterModel()
}

// intrudersOrDefault returns the model-draw intruder count (at least 1).
func (s Spec) intrudersOrDefault() int {
	if s.Intruders < 1 {
		return 1
	}
	return s.Intruders
}

// multiModel returns the K-intruder model sampled for ModelDraws: the
// pairwise model replicated across every intruder. A K of 1 samples the
// exact stream the classic pairwise draws did.
func (s Spec) multiModel() montecarlo.MultiEncounterModel {
	base := s.model()
	m := montecarlo.MultiEncounterModel{
		Intruders: make([]montecarlo.EncounterModel, s.intrudersOrDefault()),
	}
	for i := range m.Intruders {
		m.Intruders[i] = base
	}
	return m
}

// Canonical returns the spec in semantic normal form: every implicit
// default made explicit and every scheduling-only field cleared, so two
// specs that describe the same campaign compare — and hash — equal. The
// normalizations mirror the defaults the run path applies: the implicit
// "default" variant, the implicit fault point, the default encounter
// model, the pairwise intruder count, and the estimator tuning of a spec
// with no estimator axis (which never executes and must not perturb the
// identity). Parallelism and BatchSize are dropped because estimates are
// worker-count and batch-size invariant — resubmitting a campaign with a
// different scheduling budget must hit the completed-cell cache, not
// recompute.
func (s Spec) Canonical() Spec {
	s.Variants = append([]Variant(nil), s.variantsOrDefault()...)
	s.Faults = append([]FaultPoint(nil), s.faultsOrDefault()...)
	m := s.model()
	s.Model = &m
	s.Intruders = s.intrudersOrDefault()
	if len(s.Estimators) == 0 {
		s.EstimatorSpec = montecarlo.RareEventSpec{}
	}
	s.Parallelism = 0
	s.BatchSize = 0
	return s
}

// Validate checks the campaign declaration without running it.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("campaign: empty name")
	}
	if len(s.Presets) == 0 && len(s.Scenarios) == 0 && s.ModelDraws <= 0 && len(s.Estimators) == 0 {
		return fmt.Errorf("campaign: no scenarios (want presets, explicit scenarios, model draws and/or estimators)")
	}
	if s.ModelDraws < 0 {
		return fmt.Errorf("campaign: negative model draws %d", s.ModelDraws)
	}
	seenScenario := make(map[string]bool, len(s.Presets)+len(s.Scenarios))
	for _, name := range s.Presets {
		if seenScenario[name] {
			return fmt.Errorf("campaign: duplicate preset %q", name)
		}
		seenScenario[name] = true
		if _, err := encounter.MultiPreset(name); err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
	}
	if s.Intruders < 0 {
		return fmt.Errorf("campaign: negative intruder count %d", s.Intruders)
	}
	for _, sc := range s.Scenarios {
		if sc.Name == "" {
			return fmt.Errorf("campaign: scenario with empty name")
		}
		if seenScenario[sc.Name] {
			return fmt.Errorf("campaign: duplicate scenario %q", sc.Name)
		}
		seenScenario[sc.Name] = true
		// Params.Validate rejects the zero-intruder zero value and
		// non-canonical shared-ownship forms here, with the scenario's
		// name attached — not mid-sweep from an anonymous cell.
		if err := sc.Params.Validate(); err != nil {
			return fmt.Errorf("campaign: scenario %q: %w", sc.Name, err)
		}
		if !stats.AllFinite(sc.Params.Vector()...) {
			return fmt.Errorf("campaign: scenario %q has a non-finite parameter", sc.Name)
		}
	}
	// Model-draw scenarios are named at expansion time; a preset or
	// explicit scenario reusing such a name would collide in the cell
	// stream and share its seed identity. Scan the declared names (not
	// the draw count, which may be huge) for collisions.
	for name := range seenScenario {
		suffix, ok := strings.CutPrefix(name, "model/")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(suffix)
		if err == nil && n >= 0 && n < s.ModelDraws && name == modelDrawName(n) {
			return fmt.Errorf("campaign: scenario name %q collides with a model draw", name)
		}
	}
	if s.ModelDraws > 0 {
		if err := s.model().Validate(); err != nil {
			return err
		}
	}
	if len(s.Systems) == 0 {
		return fmt.Errorf("campaign: no systems under test")
	}
	seenSys := make(map[string]bool, len(s.Systems))
	for _, name := range s.Systems {
		if name == "" {
			return fmt.Errorf("campaign: empty system name")
		}
		if seenSys[name] {
			return fmt.Errorf("campaign: duplicate system %q", name)
		}
		seenSys[name] = true
	}
	if s.Samples < 1 {
		return fmt.Errorf("campaign: samples %d < 1", s.Samples)
	}
	seenVar := make(map[string]bool, len(s.Variants))
	for _, v := range s.variantsOrDefault() {
		if v.Name == "" {
			return fmt.Errorf("campaign: variant with empty name")
		}
		if seenVar[v.Name] {
			return fmt.Errorf("campaign: duplicate variant %q", v.Name)
		}
		seenVar[v.Name] = true
		if v.Samples < 0 {
			return fmt.Errorf("campaign: variant %q: negative samples %d", v.Name, v.Samples)
		}
		if err := v.apply(s.Run).Validate(); err != nil {
			return fmt.Errorf("campaign: variant %q: %w", v.Name, err)
		}
	}
	seenEst := make(map[string]bool, len(s.Estimators))
	for _, m := range s.Estimators {
		if m == "" {
			return fmt.Errorf("campaign: empty estimator method")
		}
		if seenEst[m] {
			return fmt.Errorf("campaign: duplicate estimator method %q", m)
		}
		seenEst[m] = true
		es := s.EstimatorSpec
		es.Method = m
		if err := es.Validate(); err != nil {
			return fmt.Errorf("campaign: estimator %q: %w", m, err)
		}
	}
	if len(s.Estimators) > 0 {
		if seenScenario[estimatorScenario] {
			return fmt.Errorf("campaign: scenario name %q is reserved for estimator cells", estimatorScenario)
		}
		// Estimator cells sample the statistical model even when no
		// model-draw scenarios do.
		if err := s.model().Validate(); err != nil {
			return err
		}
	}
	seenFault := make(map[string]bool, len(s.Faults))
	disabled := 0
	for _, fp := range s.faultsOrDefault() {
		if fp.Name == "" {
			return fmt.Errorf("campaign: fault point with empty name")
		}
		if seenFault[fp.Name] {
			return fmt.Errorf("campaign: duplicate fault point %q", fp.Name)
		}
		seenFault[fp.Name] = true
		if err := fp.Profile.Validate(); err != nil {
			return fmt.Errorf("campaign: fault point %q: %w", fp.Name, err)
		}
		if !fp.Profile.Enabled() {
			// Disabled points all serialize with the empty fault label,
			// so a second one would be indistinguishable in the record
			// stream and the summaries.
			if disabled++; disabled > 1 {
				return fmt.Errorf("campaign: fault axis has more than one fault-free point")
			}
		}
	}
	return nil
}

// FromConfig reads a Spec from an ECJ-style parameter set. Recognized keys
// (defaults from DefaultSpec):
//
//	campaign.name
//	campaign.presets            comma list (pairwise and/or multi-intruder
//	                            preset names), or "all" for every pairwise
//	                            preset
//	campaign.model.draws        sampled encounter-model scenarios
//	campaign.model.hmd          "min, max" uniform prior replacing the
//	                            model's CPA horizontal miss distance
//	campaign.model.vmd          "min, max" uniform prior replacing the
//	                            model's CPA vertical miss distance
//	campaign.intruders          intruder count K of each model draw
//	                            (default 1, the classic pairwise draws)
//	campaign.systems            comma list of registered system names
//	campaign.samples            simulations per cell
//	campaign.seed
//	campaign.parallelism
//	campaign.batch              lockstep episode batch per cell evaluator
//	                            (0 = classic per-episode loop; results
//	                            are batch-size invariant)
//	run.decision.period         base run-config overrides
//	run.overtime
//	run.coordination
//	run.tracker
//	campaign.variant.N.name     variant axis, N = 0, 1, ... (contiguous)
//	campaign.variant.N.samples
//	campaign.variant.N.coordination
//	campaign.variant.N.tracker
//	campaign.variant.N.decision.period
//	campaign.variant.N.overtime
//	campaign.faults             fault axis: comma list of preset severity
//	                            profiles (fault.PresetNames), or "all"
//	campaign.faults.N.name      custom fault points appended after the
//	                            presets, N = 0, 1, ... (contiguous)
//	campaign.faults.N.preset    optional base profile the fields override
//	campaign.faults.N.burst.enter
//	campaign.faults.N.burst.exit
//	campaign.faults.N.burst.drop
//	campaign.faults.N.range
//	campaign.faults.N.latency
//	campaign.faults.N.commloss.start
//	campaign.faults.N.commloss.duration
//	campaign.estimator.methods   rare-event estimator axis: comma list of
//	                             montecarlo.Methods names, or "all"
//	campaign.estimator.defensive shared estimator tuning (see
//	campaign.estimator.bandwidth montecarlo.SpecFromConfig for the full
//	campaign.estimator.levels    field menu and kernel.N rows)
//	campaign.estimator.kernel.N
func FromConfig(c *config.Params) (Spec, error) {
	s := DefaultSpec()
	s.Name = c.StringOr("campaign.name", s.Name)
	s.Presets = c.StringsOr("campaign.presets", s.Presets)
	if len(s.Presets) == 1 && s.Presets[0] == "all" {
		s.Presets = encounter.PresetNames()
	}
	var err error
	if s.ModelDraws, err = c.IntOr("campaign.model.draws", 0); err != nil {
		return s, err
	}
	if err = modelFromConfig(c, &s); err != nil {
		return s, err
	}
	if s.Intruders, err = c.IntOr("campaign.intruders", 0); err != nil {
		return s, err
	}
	s.Systems = c.StringsOr("campaign.systems", s.Systems)
	if s.Samples, err = c.IntOr("campaign.samples", s.Samples); err != nil {
		return s, err
	}
	if s.Seed, err = c.Uint64Or("campaign.seed", s.Seed); err != nil {
		return s, err
	}
	if s.Parallelism, err = c.IntOr("campaign.parallelism", 0); err != nil {
		return s, err
	}
	if s.BatchSize, err = c.IntOr("campaign.batch", 0); err != nil {
		return s, err
	}
	if s.Run.DecisionPeriod, err = c.FloatOr("run.decision.period", s.Run.DecisionPeriod); err != nil {
		return s, err
	}
	if s.Run.Overtime, err = c.FloatOr("run.overtime", s.Run.Overtime); err != nil {
		return s, err
	}
	if s.Run.Coordination, err = c.BoolOr("run.coordination", s.Run.Coordination); err != nil {
		return s, err
	}
	if s.Run.UseTracker, err = c.BoolOr("run.tracker", s.Run.UseTracker); err != nil {
		return s, err
	}
	for n := 0; ; n++ {
		prefix := fmt.Sprintf("campaign.variant.%d.", n)
		if !c.Has(prefix + "name") {
			break
		}
		v := Variant{Name: c.StringOr(prefix+"name", "")}
		if v.Samples, err = c.IntOr(prefix+"samples", 0); err != nil {
			return s, err
		}
		if c.Has(prefix + "coordination") {
			b, err := c.Bool(prefix + "coordination")
			if err != nil {
				return s, err
			}
			v.Coordination = &b
		}
		if c.Has(prefix + "tracker") {
			b, err := c.Bool(prefix + "tracker")
			if err != nil {
				return s, err
			}
			v.UseTracker = &b
		}
		if c.Has(prefix + "decision.period") {
			f, err := c.Float(prefix + "decision.period")
			if err != nil {
				return s, err
			}
			v.DecisionPeriod = &f
		}
		if c.Has(prefix + "overtime") {
			f, err := c.Float(prefix + "overtime")
			if err != nil {
				return s, err
			}
			v.Overtime = &f
		}
		s.Variants = append(s.Variants, v)
	}
	if err := validateVariantKeys(c, len(s.Variants)); err != nil {
		return s, err
	}
	names := c.StringsOr("campaign.faults", nil)
	if len(names) == 1 && names[0] == "all" {
		names = fault.PresetNames()
	}
	for _, name := range names {
		p, err := fault.Preset(name)
		if err != nil {
			return s, fmt.Errorf("campaign: %w", err)
		}
		s.Faults = append(s.Faults, FaultPoint{Name: name, Profile: p})
	}
	parsedFaults := 0
	for n := 0; ; n++ {
		prefix := fmt.Sprintf("campaign.faults.%d.", n)
		if !c.Has(prefix + "name") {
			break
		}
		p, err := fault.FromConfig(c, prefix)
		if err != nil {
			return s, fmt.Errorf("campaign: fault point %d: %w", n, err)
		}
		s.Faults = append(s.Faults, FaultPoint{Name: c.StringOr(prefix+"name", ""), Profile: p})
		parsedFaults++
	}
	if err := validateFaultKeys(c, parsedFaults); err != nil {
		return s, err
	}
	s.Estimators = c.StringsOr("campaign.estimator.methods", nil)
	if len(s.Estimators) == 1 && s.Estimators[0] == "all" {
		s.Estimators = montecarlo.Methods()
	}
	if err := validateEstimatorKeys(c, len(s.Estimators) > 0); err != nil {
		return s, err
	}
	if s.EstimatorSpec, err = montecarlo.SpecFromConfig(c, "campaign.estimator."); err != nil {
		return s, err
	}
	return s, s.Validate()
}

// modelFromConfig applies the optional campaign.model.hmd / .vmd keys:
// each is a "min, max" pair replacing the statistical model's CPA
// miss-distance prior (and matching sampling range) with a uniform
// interval. Widening them spreads the encounter mass away from conflict,
// turning the NMAC into a genuinely rare event — the regime the
// campaign.estimator axis exists for. Specs without these keys keep
// s.Model nil and the default model, so their output is untouched.
func modelFromConfig(c *config.Params, s *Spec) error {
	for _, mk := range []struct {
		key      string
		vertical bool
	}{
		{"campaign.model.hmd", false},
		{"campaign.model.vmd", true},
	} {
		if !c.Has(mk.key) {
			continue
		}
		v, err := c.Floats(mk.key)
		if err != nil {
			return err
		}
		if len(v) != 2 || !(v[0] < v[1]) {
			return fmt.Errorf("%s: want \"min, max\" with min < max, got %v", mk.key, v)
		}
		if s.Model == nil {
			m := montecarlo.DefaultEncounterModel()
			s.Model = &m
		}
		d := montecarlo.Uniform{Min: v[0], Max: v[1]}
		r := encounter.Range{Min: v[0], Max: v[1]}
		if mk.vertical {
			s.Model.VerticalMissDistance = d
			s.Model.Ranges.VerticalMissDistance = r
		} else {
			s.Model.HorizontalMissDistance = d
			s.Model.Ranges.HorizontalMissDistance = r
		}
	}
	return nil
}

// validateEstimatorKeys rejects campaign.estimator.* keys the estimator
// codec does not consume, and estimator tuning declared without the axis —
// either would otherwise silently estimate nothing or the wrong thing.
func validateEstimatorKeys(c *config.Params, haveAxis bool) error {
	const pfx = "campaign.estimator."
	for _, key := range c.Keys() {
		if !strings.HasPrefix(key, pfx) {
			continue
		}
		rest := key[len(pfx):]
		if rest == montecarlo.KeyMethod {
			return fmt.Errorf("campaign: %q: the estimator axis is declared as campaign.estimator.methods (a comma list)", key)
		}
		if rest == "methods" {
			continue
		}
		if !montecarlo.IsSpecKey(rest) {
			return fmt.Errorf("campaign: unknown estimator key %q (want methods, %s, or kernel.N)",
				key, strings.Join(montecarlo.SpecFieldNames(), ", "))
		}
		if !haveAxis {
			return fmt.Errorf("campaign: orphaned estimator key %q (declare campaign.estimator.methods to enable the axis)", key)
		}
	}
	return nil
}

// validateVariantKeys rejects campaign.variant.* keys the parse loop did
// not consume: a gap or missing .name in the numbering, or a typoed
// override suffix, would otherwise silently run the wrong configuration.
func validateVariantKeys(c *config.Params, parsed int) error {
	const pfx = "campaign.variant."
	for _, key := range c.Keys() {
		if !strings.HasPrefix(key, pfx) {
			continue
		}
		rest := key[len(pfx):]
		dot := strings.IndexByte(rest, '.')
		var n int
		var err error
		if dot < 0 {
			err = fmt.Errorf("no field")
		} else {
			n, err = strconv.Atoi(rest[:dot])
		}
		if err != nil || n < 0 || strconv.Itoa(n) != rest[:dot] {
			return fmt.Errorf("campaign: malformed variant key %q (want campaign.variant.N.field)", key)
		}
		if n >= parsed {
			return fmt.Errorf("campaign: orphaned variant key %q (variants are numbered contiguously from 0, each with a name)", key)
		}
		switch rest[dot+1:] {
		case "name", "samples", "coordination", "tracker", "decision.period", "overtime":
		default:
			return fmt.Errorf("campaign: unknown variant field in %q", key)
		}
	}
	return nil
}

// validateFaultKeys rejects campaign.faults.* keys the parse loop did not
// consume, in the same menu style as validateVariantKeys: a numbering gap,
// a point without a name, or a typoed profile field would otherwise
// silently sweep the wrong degradation.
func validateFaultKeys(c *config.Params, parsed int) error {
	const pfx = "campaign.faults."
	fields := append([]string{"name", fault.KeyPreset}, fault.FieldNames()...)
	for _, key := range c.Keys() {
		if !strings.HasPrefix(key, pfx) {
			continue
		}
		rest := key[len(pfx):]
		dot := strings.IndexByte(rest, '.')
		var n int
		var err error
		if dot < 0 {
			err = fmt.Errorf("no field")
		} else {
			n, err = strconv.Atoi(rest[:dot])
		}
		if err != nil || n < 0 || strconv.Itoa(n) != rest[:dot] {
			return fmt.Errorf("campaign: malformed fault key %q (want campaign.faults.N.field)", key)
		}
		if n >= parsed {
			return fmt.Errorf("campaign: orphaned fault key %q (fault points are numbered contiguously from 0, each with a name)", key)
		}
		field := rest[dot+1:]
		ok := false
		for _, f := range fields {
			if field == f {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("campaign: unknown fault field in %q (want one of %s)", key, strings.Join(fields, ", "))
		}
	}
	return nil
}

// Load reads and parses a campaign spec from an ECJ-style parameter file.
func Load(path string) (Spec, error) {
	params, err := config.Load(path)
	if err != nil {
		return Spec{}, err
	}
	return FromConfig(params)
}
