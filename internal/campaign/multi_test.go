package campaign

// Multi-intruder campaign coverage: the mixed preset axis, the
// campaign.intruders model-draw knob, and the K-block cell records.

import (
	"strings"
	"testing"

	"acasxval/internal/config"
	"acasxval/internal/encounter"
)

func TestMultiPresetAxisMixesPairwiseAndMulti(t *testing.T) {
	s := DefaultSpec()
	s.Presets = []string{"headon", "sandwich", "crossstream"}
	s.Systems = []string{"none"}
	s.Samples = 2
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(s, DefaultSystems(nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	wantK := map[string]int{"headon": 1, "sandwich": 2, "crossstream": 3}
	for _, c := range res.Cells {
		m, err := c.MultiEncounterParams()
		if err != nil {
			t.Fatal(err)
		}
		if got := m.NumIntruders(); got != wantK[c.Scenario] {
			t.Errorf("%s: %d intruders, want %d", c.Scenario, got, wantK[c.Scenario])
		}
		if wantK[c.Scenario] > 1 {
			if _, err := c.EncounterParams(); err == nil {
				t.Errorf("%s: pairwise decode of a multi cell did not error", c.Scenario)
			}
		}
	}
}

func TestModelDrawIntruders(t *testing.T) {
	c, err := config.Parse(`
campaign.name = multidraw
campaign.model.draws = 2
campaign.intruders = 3
campaign.systems = none
campaign.samples = 2
campaign.seed = 4
`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := FromConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.Intruders != 3 {
		t.Fatalf("intruders = %d, want 3", s.Intruders)
	}
	res, err := Run(s, DefaultSystems(nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	// The spec inherits the default pairwise presets (no campaign.presets
	// key), so the intruder knob must widen the model draws to K blocks
	// while leaving the preset cells at their own K of 1.
	draws := 0
	for _, cell := range res.Cells {
		want := encounter.NumParams
		if strings.HasPrefix(cell.Scenario, "model/") {
			want = 3 * encounter.NumParams
			draws++
		}
		if len(cell.Params) != want {
			t.Errorf("%s: %d params, want %d", cell.Scenario, len(cell.Params), want)
		}
	}
	if draws != 2 {
		t.Errorf("%d model-draw cells, want 2", draws)
	}

	s.Intruders = -1
	if s.Validate() == nil {
		t.Error("negative intruder count accepted")
	}
}
