package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"acasxval/internal/acasx"
	"acasxval/internal/encounter"
	"acasxval/internal/montecarlo"
	"acasxval/internal/stats"
	"acasxval/internal/sys"
)

// BaselineSystem is the system name risk ratios are computed against.
const BaselineSystem = "none"

// modelDrawSalt decorrelates scenario-draw seeds from cell-sampling seeds.
const modelDrawSalt = 0x5CEA12105A17

// modelDrawName labels the i-th encounter-model draw in the scenario axis.
func modelDrawName(i int) string { return fmt.Sprintf("model/%03d", i) }

// estimatorScenario is the reserved scenario name of estimator cells: they
// estimate against the statistical encounter model itself, not a fixed
// geometry.
const estimatorScenario = "model"

// SystemSet maps system names to factories producing fresh system pairs.
type SystemSet map[string]montecarlo.SystemFactory

// NeedsTable reports whether the named system requires a logic table (per
// the sys registry).
func NeedsTable(name string) bool {
	return sys.NeedsTable(name)
}

// DefaultSystems returns every registered backend under its default
// configuration: table-requiring backends ("acasx", "belief") only when a
// logic table is supplied. Backends whose defaults fail to construct are
// left out — the default set is the runnable menu.
func DefaultSystems(table *acasx.Table) SystemSet {
	ctx := sys.Context{Table: table}
	set := SystemSet{}
	for _, name := range sys.Names() {
		if sys.NeedsTable(name) && table == nil {
			continue
		}
		factory, err := sys.PairFactory(ctx, sys.Spec{Name: name})
		if err != nil {
			continue
		}
		set[name] = factory
	}
	return set
}

// Names lists the set's system names in sorted order.
func (s SystemSet) Names() []string {
	names := make([]string, 0, len(s))
	for name := range s {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// CellResult is one cell of the campaign cross-product: one scenario run
// Samples times against one system under one variant. It is the unit
// streamed as a JSONL record.
type CellResult struct {
	Index    int    `json:"cell"`
	Campaign string `json:"campaign"`
	Scenario string `json:"scenario"`
	Geometry string `json:"geometry"`
	System   string `json:"system"`
	Variant  string `json:"variant"`
	// Fault names the fault-axis point the cell ran under; omitted for
	// the fault-free point, so unfaulted sweeps keep their historical
	// byte stream.
	Fault string `json:"fault,omitempty"`
	// Estimator names the rare-event estimation method of an estimator
	// cell (scenario "model"): the cell estimates P(NMAC) under the
	// statistical encounter model rather than replaying a fixed geometry.
	// Empty for classic cells, which keep their historical byte stream.
	Estimator  string  `json:"estimator,omitempty"`
	Samples    int     `json:"samples"`
	NMACs      int     `json:"nmacs"`
	PNMAC      float64 `json:"p_nmac"`
	PNMACLo    float64 `json:"p_nmac_lo"`
	PNMACHi    float64 `json:"p_nmac_hi"`
	AlertRate  float64 `json:"alert_rate"`
	MeanAlerts float64 `json:"mean_alerts"`
	MeanMinSep float64 `json:"mean_min_sep_m"`
	// ESS and VarianceReduction report the estimator cell's effective
	// sample size and measured variance-reduction factor against a
	// brute-force run of the same episode budget (set only on estimator
	// cells; see montecarlo.Estimate).
	ESS               float64 `json:"ess,omitempty"`
	VarianceReduction float64 `json:"variance_reduction,omitempty"`
	// Params is the cell's encounter parameter vector in genome order, so
	// downstream consumers (the adversarial search's campaign seeding) can
	// reconstruct the exact scenario from the JSONL record alone.
	Params []float64 `json:"params"`
}

// EncounterParams decodes the record's parameter vector as a classic
// pairwise encounter. It errors on multi-intruder cells (vector length
// K*NumParams with K > 1); use MultiEncounterParams for those.
func (c CellResult) EncounterParams() (encounter.Params, error) {
	return encounter.FromVector(c.Params)
}

// MultiEncounterParams decodes the record's parameter vector as a
// one-ownship, K-intruder encounter (the pairwise records decode as K = 1).
func (c CellResult) MultiEncounterParams() (encounter.MultiParams, error) {
	return encounter.MultiFromVector(c.Params)
}

// SystemSummary aggregates one (system, variant) pair across every
// scenario: pooled NMAC probability, alert rate, mean minimum separation,
// and the risk ratio against the unequipped baseline under the same
// variant. HasRiskRatio reports whether the ratio is defined: a baseline
// ran under this variant and recorded at least one NMAC. When it is false
// — no baseline configured, or a baseline with zero events — the summary
// ranking falls back to raw pooled P(NMAC).
type SystemSummary struct {
	System  string `json:"system"`
	Variant string `json:"variant"`
	// Fault names the fault-axis point the group ran under (empty for
	// the fault-free point). Risk ratios compare against the unequipped
	// baseline under the SAME degradation, so a ratio near 1 under a
	// severe profile means the system has lost its protective value,
	// not that the baseline improved.
	Fault        string  `json:"fault,omitempty"`
	Cells        int     `json:"cells"`
	Samples      int     `json:"samples"`
	NMACs        int     `json:"nmacs"`
	PNMAC        float64 `json:"p_nmac"`
	AlertRate    float64 `json:"alert_rate"`
	MeanMinSep   float64 `json:"mean_min_sep_m"`
	RiskRatio    float64 `json:"risk_ratio"`
	HasRiskRatio bool    `json:"has_risk_ratio"`
}

// Result is the outcome of a campaign run.
type Result struct {
	// Name echoes the campaign name.
	Name string
	// Cells holds every cell result in deterministic cell order (the same
	// order the JSONL stream uses).
	Cells []CellResult
	// Summaries ranks (system, variant, fault) aggregates: variants in
	// declared order, fault points in declared order within a variant;
	// within each group, systems by ascending risk ratio (systems without
	// a baseline rank after those with one, by pooled P(NMAC)).
	Summaries []SystemSummary
	// TotalRuns counts individual encounter simulations.
	TotalRuns int
}

// Cell is one unit of campaign work before execution: one point of the
// expanded cross-product, ready to hand to RunCellContext. An estimator
// cell (Estimator != "") carries no fixed params: it samples the spec's
// statistical model. Cells are exposed so external schedulers (the
// validation server's shard supervisor) can distribute exactly the units
// Run distributes, with identical results.
type Cell struct {
	Index     int
	Scenario  string
	Geometry  string
	Params    encounter.MultiParams
	System    string
	Variant   Variant
	Fault     FaultPoint
	Estimator string
}

// Cells expands the spec's cross-product in deterministic order:
// variant-major, then fault point, then scenario, then system. The
// default single fault point reproduces the historical cell order
// exactly.
func (s Spec) Cells() ([]Cell, error) {
	type scenario struct {
		name     string
		geometry string
		params   encounter.MultiParams
	}
	var scenarios []scenario
	for _, name := range s.Presets {
		m, err := encounter.MultiPreset(name)
		if err != nil {
			return nil, err
		}
		scenarios = append(scenarios, scenario{name, encounter.ClassifyMulti(m).Category.String(), m})
	}
	for _, sc := range s.Scenarios {
		scenarios = append(scenarios, scenario{sc.Name, encounter.ClassifyMulti(sc.Params).Category.String(), sc.Params})
	}
	model := s.multiModel()
	for i := 0; i < s.ModelDraws; i++ {
		// Scenario draws derive from the campaign seed alone, so the same
		// spec always sweeps the same sampled encounters. A K of 1 draws
		// the exact stream the classic pairwise sweeps did, keeping their
		// JSONL byte-identical.
		m := model.Sample(stats.NewChildRNG(s.Seed^modelDrawSalt, i))
		scenarios = append(scenarios, scenario{modelDrawName(i), encounter.ClassifyMulti(m).Category.String(), m})
	}
	var cells []Cell
	for _, v := range s.variantsOrDefault() {
		for _, fp := range s.faultsOrDefault() {
			for _, sc := range scenarios {
				for _, sys := range s.Systems {
					cells = append(cells, Cell{
						Index:    len(cells),
						Scenario: sc.name,
						Geometry: sc.geometry,
						Params:   sc.params,
						System:   sys,
						Variant:  v,
						Fault:    fp,
					})
				}
			}
		}
	}
	// Estimator cells go strictly after the classic grid: the leading
	// bytes of the JSONL stream — and every classic cell index — are
	// untouched by declaring the axis.
	for _, v := range s.variantsOrDefault() {
		for _, fp := range s.faultsOrDefault() {
			for _, est := range s.Estimators {
				for _, sys := range s.Systems {
					cells = append(cells, Cell{
						Index:     len(cells),
						Scenario:  estimatorScenario,
						Geometry:  estimatorScenario,
						System:    sys,
						Variant:   v,
						Fault:     fp,
						Estimator: est,
					})
				}
			}
		}
	}
	return cells, nil
}

// Run executes the campaign: every cell replays its fixed scenario through
// the Monte-Carlo harness on a worker pool, cells stream to jsonl (may be
// nil) as one JSON record per line in deterministic cell order, and the
// aggregate summaries rank systems by risk ratio. The result — including
// the JSONL byte stream — is identical for identical (spec, systems).
func Run(spec Spec, systems SystemSet, jsonl io.Writer) (*Result, error) {
	return RunContext(context.Background(), spec, systems, jsonl)
}

// RunContext is Run under a cancellation context. A cancelled ctx stops
// the cell pool promptly without corrupting the stream: the JSONL writer
// never emits a partial line, and the call returns the partial result —
// exactly the completed prefix of the deterministic cell order, matching
// the bytes already flushed — alongside ctx.Err(). Callers distinguish
// interruption (non-nil result and error) from failure (nil result).
func RunContext(ctx context.Context, spec Spec, systems SystemSet, jsonl io.Writer) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	for _, name := range spec.Systems {
		if _, ok := systems[name]; !ok {
			return nil, fmt.Errorf("campaign: system %q not available (have %v)", name, systems.Names())
		}
	}
	cells, err := spec.Cells()
	if err != nil {
		return nil, err
	}

	// Clamp the pool to the hardware the same way BuildTable does: each
	// cell is CPU-bound, so oversubscribing beyond NumCPU only adds
	// scheduler churn.
	pool := spec.Parallelism
	if pool < 1 || pool > runtime.NumCPU() {
		pool = runtime.NumCPU()
	}
	// When the cell grid cannot fill the pool, spill the leftover
	// parallelism into the cells themselves: each cell's evaluator fans its
	// episodes across the otherwise-idle cores, with the division remainder
	// handed out one extra worker per leading cell so no core idles.
	// Estimates are worker-count invariant, so the spill changes wall-clock
	// only — every result and JSONL byte stays identical.
	workers := pool
	episodeWorkers, extraWorkerCells := 1, 0
	if len(cells) > 0 && workers > len(cells) {
		workers = len(cells)
		episodeWorkers = pool / workers
		extraWorkerCells = pool % workers
	}
	cellEpisodeWorkers := func(i int) int {
		if i < extraWorkerCells {
			return episodeWorkers + 1
		}
		return episodeWorkers
	}

	// Fan the cells out; stream completed results in index order so the
	// JSONL byte stream is reproducible regardless of scheduling.
	results := make([]CellResult, len(cells))
	errs := make([]error, len(cells))
	idxCh := make(chan int)
	doneCh := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// Each worker reuses one scratch across all its cells instead
			// of allocating fresh run buffers per cell.
			var scratch montecarlo.Scratch
			for i := range idxCh {
				c := cells[i]
				results[i], errs[i] = RunCellContext(ctx, spec, c, systems[c.System], cellEpisodeWorkers(i), &scratch)
				doneCh <- i
			}
		}()
	}
	// abort stops the feeder after the first error so a failing campaign
	// does not run its whole remaining cross-product before reporting; a
	// cancelled ctx stops it the same way (the in-flight cells additionally
	// abort between episodes).
	abort := make(chan struct{})
	go func() {
	feed:
		for i := range cells {
			select {
			case idxCh <- i:
			case <-abort:
				break feed
			case <-ctx.Done():
				break feed
			}
		}
		close(idxCh)
		wg.Wait()
		close(doneCh)
	}()

	ready := make(map[int]bool, len(cells))
	next := 0
	// prefix is the completed in-order cell prefix at the moment of the
	// first error: exactly the cells whose JSONL lines were flushed.
	prefix := 0
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
			prefix = next
			close(abort)
		}
	}
	for i := range doneCh {
		ready[i] = true
		for ready[next] {
			if errs[next] != nil {
				fail(errs[next])
			}
			if firstErr == nil && jsonl != nil {
				line, err := json.Marshal(results[next])
				if err == nil {
					_, err = fmt.Fprintf(jsonl, "%s\n", line)
				}
				if err != nil {
					fail(err)
				}
			}
			delete(ready, next)
			next++
		}
	}
	if firstErr != nil {
		if errors.Is(firstErr, context.Canceled) || errors.Is(firstErr, context.DeadlineExceeded) {
			// Interrupted, not broken: report the completed prefix so the
			// caller can summarize the work that did finish.
			return NewResult(spec, results[:prefix]), firstErr
		}
		return nil, firstErr
	}
	return NewResult(spec, results), nil
}

// RunCellContext executes one expanded campaign cell and assembles its
// CellResult — the exact record Run streams for that cell, byte for byte
// once marshaled. It is the shared execution path of the in-process pool
// and the validation server's shard supervisor: a cell re-run after a
// crash, timeout or retry reproduces the identical record, because the
// cell's whole stochastic draw derives from (spec.Seed, cell identity).
func RunCellContext(ctx context.Context, spec Spec, c Cell, factory montecarlo.SystemFactory, episodeWorkers int, scratch *montecarlo.Scratch) (CellResult, error) {
	est, err := runCell(ctx, spec, c, factory, episodeWorkers, scratch)
	if err != nil {
		return CellResult{}, err
	}
	res := CellResult{
		Index:      c.Index,
		Campaign:   spec.Name,
		Scenario:   c.Scenario,
		Geometry:   c.Geometry,
		System:     c.System,
		Variant:    c.Variant.Name,
		Fault:      c.Fault.label(),
		Estimator:  c.Estimator,
		Samples:    est.Samples,
		NMACs:      est.NMACs,
		PNMAC:      est.PNMAC,
		PNMACLo:    est.PNMACCI.Lo,
		PNMACHi:    est.PNMACCI.Hi,
		AlertRate:  est.AlertRate,
		MeanAlerts: est.MeanAlerts,
		MeanMinSep: est.MeanMinSeparation,
	}
	if c.Estimator == "" {
		res.Params = c.Params.Vector()
	} else {
		// ESS and VRF only mean something against an estimator; classic
		// cells stay byte-identical.
		res.ESS = est.ESS
		res.VarianceReduction = est.VarianceReduction
	}
	return res, nil
}

// NewResult assembles a Result from completed cell records: the cells in
// stream order, the pooled run count, and the ranked summaries. Run uses
// it for both complete and interrupted campaigns; the validation server
// uses it to rebuild a byte-identical result from journaled cells.
func NewResult(spec Spec, cells []CellResult) *Result {
	res := &Result{Name: spec.Name, Cells: cells}
	for _, c := range cells {
		res.TotalRuns += c.Samples
	}
	res.Summaries = summarize(spec, cells)
	return res
}

// CellSeed derives a cell's Monte-Carlo seed from its stable identity
// (scenario, system, variant names) rather than its ordinal index, so
// growing one axis — most importantly appending reloaded danger-archive
// scenarios — cannot shift the stochastic draws of every pre-existing
// cell. Identical cells across sweeps report identical numbers, which is
// what makes a `sweep -extra` run comparable against the sweep it grew
// from. The fault point is deliberately absent from the identity: every
// severity level replays the same episode seeds as its clean sibling, so
// differences along the fault axis are paired — pure degradation effect,
// not sampling noise. Exported because the validation server keys its
// completed-cell cache by (cell identity hash, cell seed).
func CellSeed(seed uint64, c Cell) uint64 {
	h := fnv.New64a()
	// Length-prefix each component: names are arbitrary strings, so a
	// plain separator could make distinct identities hash alike.
	fmt.Fprintf(h, "%d:%s|%d:%s|%d:%s",
		len(c.Scenario), c.Scenario, len(c.System), c.System, len(c.Variant.Name), c.Variant.Name)
	return stats.DeriveSeed(seed^h.Sum64(), 0)
}

// runCell evaluates one cell: the fixed scenario replayed Samples times
// with seed-derived stochastic dynamics and sensor noise. scratch is the
// owning worker's reusable world set; episodeWorkers is the per-cell
// episode parallelism (1 when the cell pool already saturates the CPUs,
// more when a small grid leaves cores idle).
func runCell(ctx context.Context, spec Spec, c Cell, factory montecarlo.SystemFactory, episodeWorkers int, scratch *montecarlo.Scratch) (*montecarlo.Estimate, error) {
	cfg := montecarlo.Config{
		Samples:     c.Variant.samples(spec.Samples),
		Run:         c.Variant.apply(spec.Run),
		Seed:        CellSeed(spec.Seed, c),
		Parallelism: episodeWorkers,
		BatchSize:   spec.BatchSize,
	}
	// The fault axis replaces whatever profile the base configuration
	// carried: each point IS the cell's degradation condition.
	cfg.Run.Faults = c.Fault.Profile
	if c.Estimator != "" {
		// Estimator cells estimate under the statistical model. The seed
		// identity omits the method (like it omits the fault point), so
		// every estimator — and brute force — draws comparable randomness
		// for the same (system, variant).
		es := spec.EstimatorSpec
		es.Method = c.Estimator
		return montecarlo.EstimateRareMultiWithScratchContext(ctx, spec.multiModel(), factory, cfg, es, scratch)
	}
	return montecarlo.EvaluateMultiWithScratchContext(ctx, montecarlo.MultiPointModel(c.Params), factory, cfg, scratch)
}

// summarize pools cells into per-(system, variant, fault) aggregates and
// ranks them: variants in declared order, fault points in declared order
// within a variant, systems by ascending risk ratio within each group.
// Each risk ratio divides by the unequipped baseline under the SAME
// variant and the SAME fault point, so degraded groups measure how much
// protective value survives the degradation, not how much the degradation
// hurt the baseline.
func summarize(spec Spec, cells []CellResult) []SystemSummary {
	type key struct{ system, variant, fault string }
	type agg struct {
		cells, samples, nmacs int
		alerted, sepWeighted  float64
	}
	aggs := make(map[key]*agg)
	for _, c := range cells {
		if c.Estimator != "" {
			// Estimator cells measure the model-level rare-event risk;
			// pooling their weighted estimates with fixed-scenario counts
			// would corrupt both. They get their own summary section.
			continue
		}
		k := key{c.System, c.Variant, c.Fault}
		a := aggs[k]
		if a == nil {
			a = &agg{}
			aggs[k] = a
		}
		a.cells++
		a.samples += c.Samples
		a.nmacs += c.NMACs
		a.alerted += c.AlertRate * float64(c.Samples)
		a.sepWeighted += c.MeanMinSep * float64(c.Samples)
	}

	var out []SystemSummary
	for _, v := range spec.variantsOrDefault() {
		for _, fp := range spec.faultsOrDefault() {
			var group []SystemSummary
			baselinePNMAC := math.NaN()
			if a, ok := aggs[key{BaselineSystem, v.Name, fp.label()}]; ok && a.samples > 0 {
				baselinePNMAC = float64(a.nmacs) / float64(a.samples)
			}
			for _, sys := range spec.Systems {
				a, ok := aggs[key{sys, v.Name, fp.label()}]
				if !ok || a.samples == 0 {
					continue
				}
				s := SystemSummary{
					System:     sys,
					Variant:    v.Name,
					Fault:      fp.label(),
					Cells:      a.cells,
					Samples:    a.samples,
					NMACs:      a.nmacs,
					PNMAC:      float64(a.nmacs) / float64(a.samples),
					AlertRate:  a.alerted / float64(a.samples),
					MeanMinSep: a.sepWeighted / float64(a.samples),
				}
				if !math.IsNaN(baselinePNMAC) && baselinePNMAC > 0 {
					s.RiskRatio = s.PNMAC / baselinePNMAC
					s.HasRiskRatio = true
				}
				group = append(group, s)
			}
			sort.SliceStable(group, func(i, j int) bool {
				a, b := group[i], group[j]
				if a.HasRiskRatio != b.HasRiskRatio {
					return a.HasRiskRatio
				}
				if a.HasRiskRatio && a.RiskRatio != b.RiskRatio {
					return a.RiskRatio < b.RiskRatio
				}
				if a.PNMAC != b.PNMAC {
					return a.PNMAC < b.PNMAC
				}
				return a.System < b.System
			})
			out = append(out, group...)
		}
	}
	return out
}

// SummaryTable renders the ranked summaries as an aligned text table. The
// fault column appears only when some group ran under a named fault
// point, so unfaulted sweeps keep their historical layout.
func (r *Result) SummaryTable() string {
	withFaults := false
	for _, s := range r.Summaries {
		if s.Fault != "" {
			withFaults = true
			break
		}
	}
	var b strings.Builder
	if withFaults {
		fmt.Fprintf(&b, "%-10s %-14s %-10s %6s %8s %9s %11s %14s %11s\n",
			"system", "variant", "fault", "cells", "samples", "P(NMAC)", "alert rate", "mean min sep", "risk ratio")
	} else {
		fmt.Fprintf(&b, "%-10s %-14s %6s %8s %9s %11s %14s %11s\n",
			"system", "variant", "cells", "samples", "P(NMAC)", "alert rate", "mean min sep", "risk ratio")
	}
	for _, s := range r.Summaries {
		ratio := "-"
		if s.HasRiskRatio {
			ratio = fmt.Sprintf("%.4f", s.RiskRatio)
		}
		if withFaults {
			flt := s.Fault
			if flt == "" {
				flt = "-"
			}
			fmt.Fprintf(&b, "%-10s %-14s %-10s %6d %8d %9.4f %11.2f %12.1f m %11s\n",
				s.System, s.Variant, flt, s.Cells, s.Samples, s.PNMAC, s.AlertRate, s.MeanMinSep, ratio)
		} else {
			fmt.Fprintf(&b, "%-10s %-14s %6d %8d %9.4f %11.2f %12.1f m %11s\n",
				s.System, s.Variant, s.Cells, s.Samples, s.PNMAC, s.AlertRate, s.MeanMinSep, ratio)
		}
	}
	r.appendEstimatorTable(&b)
	return b.String()
}

// appendEstimatorTable renders the estimator cells (scenario "model") as
// their own section: rare-event P(NMAC) estimates under the statistical
// encounter model, with interval, effective sample size and measured
// variance-reduction factor. Absent when the campaign declared no
// estimator axis, so classic summaries keep their historical layout.
func (r *Result) appendEstimatorTable(b *strings.Builder) {
	var rows []CellResult
	for _, c := range r.Cells {
		if c.Estimator != "" {
			rows = append(rows, c)
		}
	}
	if len(rows) == 0 {
		return
	}
	if b.Len() > 0 {
		b.WriteByte('\n')
	}
	fmt.Fprintf(b, "rare-event estimates (statistical encounter model)\n")
	fmt.Fprintf(b, "%-10s %-10s %-14s %-10s %8s %7s %11s %24s %9s %6s\n",
		"estimator", "system", "variant", "fault", "episodes", "nmacs", "P(NMAC)", "interval", "ESS", "VRF")
	for _, c := range rows {
		flt := c.Fault
		if flt == "" {
			flt = "-"
		}
		fmt.Fprintf(b, "%-10s %-10s %-14s %-10s %8d %7d %11.3e [%9.3e, %9.3e] %9.1f %6.1f\n",
			c.Estimator, c.System, c.Variant, flt, c.Samples, c.NMACs,
			c.PNMAC, c.PNMACLo, c.PNMACHi, c.ESS, c.VarianceReduction)
	}
}
