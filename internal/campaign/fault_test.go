package campaign

import (
	"strings"
	"testing"

	"acasxval/internal/config"
	"acasxval/internal/fault"
)

// faultSpec extends the shared test campaign with a two-point fault axis:
// the clean profile and the "moderate" preset.
func faultSpec(t *testing.T) Spec {
	t.Helper()
	moderate, err := fault.Preset("moderate")
	if err != nil {
		t.Fatal(err)
	}
	s := testSpec()
	s.Faults = []FaultPoint{
		{Name: "none"},
		{Name: "moderate", Profile: moderate},
	}
	return s
}

// TestFaultAxisPairsCellsWithCleanRun: the fault point is excluded from
// the cell-seed identity, so the fault-free point of a fault-axis
// campaign reproduces the no-axis campaign cell for cell (severity
// comparisons are paired), and every faulted cell replays the same
// scenario vector as its clean sibling.
func TestFaultAxisPairsCellsWithCleanRun(t *testing.T) {
	systems := DefaultSystems(nil)
	base, err := Run(testSpec(), systems, nil)
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := Run(faultSpec(t), systems, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(faulted.Cells) != 2*len(base.Cells) {
		t.Fatalf("fault axis cells = %d, want %d (double the clean grid)", len(faulted.Cells), 2*len(base.Cells))
	}
	type id struct{ scenario, system, variant string }
	clean := make(map[id]CellResult)
	for _, c := range base.Cells {
		if c.Fault != "" {
			t.Fatalf("clean campaign cell %d has fault label %q", c.Index, c.Fault)
		}
		clean[id{c.Scenario, c.System, c.Variant}] = c
	}
	pairedFaulted := 0
	for _, c := range faulted.Cells {
		want, ok := clean[id{c.Scenario, c.System, c.Variant}]
		if !ok {
			t.Fatalf("cell %d (%s/%s/%s) missing from the clean campaign", c.Index, c.Scenario, c.System, c.Variant)
		}
		switch c.Fault {
		case "":
			// The fault-free point must replicate the clean run exactly,
			// index aside.
			got := c
			got.Index = want.Index
			if got.Samples != want.Samples || got.NMACs != want.NMACs || got.PNMAC != want.PNMAC ||
				got.AlertRate != want.AlertRate || got.MeanMinSep != want.MeanMinSep {
				t.Errorf("fault-free cell %s/%s/%s differs from the clean campaign:\n got %+v\nwant %+v",
					c.Scenario, c.System, c.Variant, got, want)
			}
		case "moderate":
			pairedFaulted++
			// Same scenario vector — only the degradation differs.
			if len(c.Params) != len(want.Params) {
				t.Fatalf("faulted cell params length differs: %d vs %d", len(c.Params), len(want.Params))
			}
			for i := range c.Params {
				if c.Params[i] != want.Params[i] {
					t.Errorf("faulted cell %s/%s/%s params[%d] = %v, clean sibling %v",
						c.Scenario, c.System, c.Variant, i, c.Params[i], want.Params[i])
				}
			}
		default:
			t.Errorf("unexpected fault label %q", c.Fault)
		}
	}
	if pairedFaulted != len(base.Cells) {
		t.Errorf("faulted cells = %d, want %d", pairedFaulted, len(base.Cells))
	}
}

// TestFaultAxisCellOrder: cells expand variant-major, then fault point,
// then scenario, then system — the default single point reproduces the
// historical order, and a declared axis groups each variant's fault
// points contiguously.
func TestFaultAxisCellOrder(t *testing.T) {
	cells, err := faultSpec(t).Cells()
	if err != nil {
		t.Fatal(err)
	}
	perVariant := len(cells) / 2 // two variants
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has index %d", i, c.Index)
		}
		wantFault := "none"
		if (i%perVariant)/(perVariant/2) == 1 {
			wantFault = "moderate"
		}
		if c.Fault.Name != wantFault {
			t.Errorf("cell %d: fault point %q, want %q", i, c.Fault.Name, wantFault)
		}
	}
}

// TestFaultAxisSummaries: summaries group by (system, variant, fault),
// each degraded group carries its own baseline, and the table grows a
// fault column only when a named fault point ran.
func TestFaultAxisSummaries(t *testing.T) {
	systems := DefaultSystems(nil)
	res, err := Run(faultSpec(t), systems, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 2 systems x 2 variants x 2 fault points.
	if len(res.Summaries) != 8 {
		t.Fatalf("got %d summaries, want 8", len(res.Summaries))
	}
	seen := make(map[[3]string]bool)
	for _, s := range res.Summaries {
		seen[[3]string{s.System, s.Variant, s.Fault}] = true
		if s.System == BaselineSystem && s.HasRiskRatio && s.RiskRatio != 1 {
			t.Errorf("baseline risk ratio under fault %q = %v, want 1", s.Fault, s.RiskRatio)
		}
	}
	for _, sys := range []string{"none", "svo"} {
		for _, v := range []string{"default", "nocoord"} {
			for _, f := range []string{"", "moderate"} {
				if !seen[[3]string{sys, v, f}] {
					t.Errorf("missing summary group (%s, %s, %q)", sys, v, f)
				}
			}
		}
	}
	table := res.SummaryTable()
	header, _, _ := strings.Cut(table, "\n")
	if !strings.Contains(header, "fault") || !strings.Contains(table, "moderate") {
		t.Errorf("faulted summary table lacks the fault column:\n%s", table)
	}
	cleanRes, err := Run(testSpec(), systems, nil)
	if err != nil {
		t.Fatal(err)
	}
	header, _, _ = strings.Cut(cleanRes.SummaryTable(), "\n")
	if strings.Contains(header, "fault") {
		t.Errorf("clean summary table grew a fault column:\n%s", cleanRes.SummaryTable())
	}
}

// TestSpecValidateFaults: the fault-axis specific rejections.
func TestSpecValidateFaults(t *testing.T) {
	moderate, err := fault.Preset("moderate")
	if err != nil {
		t.Fatal(err)
	}
	bad := []func(*Spec){
		func(s *Spec) { s.Faults = []FaultPoint{{Name: "", Profile: moderate}} },
		func(s *Spec) {
			s.Faults = []FaultPoint{{Name: "a", Profile: moderate}, {Name: "a", Profile: moderate}}
		},
		func(s *Spec) {
			// Two disabled points would be indistinguishable in the
			// record stream.
			s.Faults = []FaultPoint{{Name: "none"}, {Name: "alsonone"}}
		},
		func(s *Spec) {
			// Invalid profile: burst entry with no exit.
			s.Faults = []FaultPoint{{Name: "stuck", Profile: fault.Profile{BurstEnter: 0.5, BurstDrop: 1}}}
		},
	}
	for i, mutate := range bad {
		s := testSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted an invalid fault axis", i)
		}
	}
	if err := faultSpec(t).Validate(); err != nil {
		t.Errorf("valid fault axis rejected: %v", err)
	}
}

// TestFromConfigFaults: the campaign.faults preset list and numbered
// custom points parse into the declared axis.
func TestFromConfigFaults(t *testing.T) {
	text := `
campaign.presets = headon
campaign.systems = none
campaign.faults = light, moderate
campaign.faults.0.name = custom
campaign.faults.0.preset = severe
campaign.faults.0.latency = 0
campaign.faults.1.name = rangecap
campaign.faults.1.range = 2000
`
	params, err := config.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	s, err := FromConfig(params)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Faults) != 4 {
		t.Fatalf("faults = %d points, want 4 (%+v)", len(s.Faults), s.Faults)
	}
	light, _ := fault.Preset("light")
	moderate, _ := fault.Preset("moderate")
	severe, _ := fault.Preset("severe")
	if s.Faults[0] != (FaultPoint{Name: "light", Profile: light}) {
		t.Errorf("point 0 = %+v", s.Faults[0])
	}
	if s.Faults[1] != (FaultPoint{Name: "moderate", Profile: moderate}) {
		t.Errorf("point 1 = %+v", s.Faults[1])
	}
	wantCustom := severe
	wantCustom.Latency = 0
	if s.Faults[2] != (FaultPoint{Name: "custom", Profile: wantCustom}) {
		t.Errorf("point 2 = %+v, want severe with latency 0", s.Faults[2])
	}
	if s.Faults[3].Name != "rangecap" || s.Faults[3].Profile.DetectionRange != 2000 {
		t.Errorf("point 3 = %+v", s.Faults[3])
	}
}

// TestFromConfigFaultsAll: "all" expands to every preset severity.
func TestFromConfigFaultsAll(t *testing.T) {
	params, err := config.Parse("campaign.presets = headon\ncampaign.systems = none\ncampaign.faults = all\n")
	if err != nil {
		t.Fatal(err)
	}
	s, err := FromConfig(params)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Faults) != len(fault.PresetNames()) {
		t.Errorf("faults = %+v, want all of %v", s.Faults, fault.PresetNames())
	}
}

// TestFromConfigFaultKeyValidation: a typo in a campaign.faults.* key is
// a hard parse error with a menu, never a silently-clean sweep.
func TestFromConfigFaultKeyValidation(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{
			name: "unknown field",
			text: "campaign.faults.0.name = a\ncampaign.faults.0.burst.entre = 0.1\n",
			want: "unknown fault field",
		},
		{
			name: "orphaned numbering gap",
			text: "campaign.faults.0.name = a\ncampaign.faults.2.name = b\n",
			want: "orphaned fault key",
		},
		{
			name: "missing name",
			text: "campaign.faults.0.latency = 2\n",
			want: "orphaned fault key",
		},
		{
			name: "malformed index",
			text: "campaign.faults.x.name = a\n",
			want: "malformed fault key",
		},
		{
			name: "unknown preset",
			text: "campaign.faults = catastrophic\n",
			want: "unknown profile",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			text := "campaign.presets = headon\ncampaign.systems = none\n" + tc.text
			params, err := config.Parse(text)
			if err != nil {
				t.Fatal(err)
			}
			_, err = FromConfig(params)
			if err == nil {
				t.Fatalf("FromConfig accepted %q", tc.text)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestFaultedCampaignRiskRatioOrdering: under heavy degradation the
// equipped system must lose protective value relative to its clean
// performance — the paper's degraded-mode argument in one assertion.
func TestFaultedCampaignRiskRatioOrdering(t *testing.T) {
	severe, err := fault.Preset("severe")
	if err != nil {
		t.Fatal(err)
	}
	s := DefaultSpec()
	s.Presets = []string{"headon", "crossing"}
	s.Systems = []string{"none", "svo"}
	s.Samples = 8
	s.Seed = 3
	s.Faults = []FaultPoint{
		{Name: "none"},
		{Name: "severe", Profile: severe},
	}
	res, err := Run(s, DefaultSystems(nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	ratios := make(map[string]SystemSummary)
	for _, sum := range res.Summaries {
		if sum.System == "svo" {
			ratios[sum.Fault] = sum
		}
	}
	clean, faulted := ratios[""], ratios["severe"]
	if !clean.HasRiskRatio || !faulted.HasRiskRatio {
		t.Fatalf("missing risk ratios: clean %+v faulted %+v", clean, faulted)
	}
	if clean.RiskRatio >= 1 {
		t.Errorf("clean equipped risk ratio = %v, want < 1", clean.RiskRatio)
	}
	if faulted.RiskRatio < clean.RiskRatio {
		t.Errorf("severe degradation improved the risk ratio: %v faulted vs %v clean",
			faulted.RiskRatio, clean.RiskRatio)
	}
}
