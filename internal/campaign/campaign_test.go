package campaign

import (
	"bytes"
	"strings"
	"testing"

	"acasxval/internal/config"
	"acasxval/internal/encounter"
)

// testSpec is a small table-free campaign: two cheap systems over a mixed
// scenario axis with two variants.
func testSpec() Spec {
	uncoordinated := false
	s := DefaultSpec()
	s.Name = "test"
	s.Presets = []string{"headon", "tailchase", "overtake"}
	s.ModelDraws = 2
	s.Systems = []string{"none", "svo"}
	s.Samples = 4
	s.Seed = 11
	s.Variants = []Variant{
		{Name: "default"},
		{Name: "nocoord", Coordination: &uncoordinated, Samples: 2},
	}
	return s
}

func TestRunDeterministic(t *testing.T) {
	systems := DefaultSystems(nil)
	var out1, out2 bytes.Buffer
	res1, err := Run(testSpec(), systems, &out1)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(testSpec(), systems, &out2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Error("JSONL streams differ between identical runs")
	}
	if res1.SummaryTable() != res2.SummaryTable() {
		t.Error("summary tables differ between identical runs")
	}
	// (3 presets + 2 draws) x 2 systems x 2 variants.
	wantCells := 5 * 2 * 2
	if len(res1.Cells) != wantCells {
		t.Fatalf("got %d cells, want %d", len(res1.Cells), wantCells)
	}
	if got := len(strings.Split(strings.TrimSpace(out1.String()), "\n")); got != wantCells {
		t.Errorf("JSONL has %d lines, want %d", got, wantCells)
	}
	// Per-variant sample counts: 4 for default, 2 for the override.
	for _, c := range res1.Cells {
		want := 4
		if c.Variant == "nocoord" {
			want = 2
		}
		if c.Samples != want {
			t.Errorf("cell %d (%s): %d samples, want %d", c.Index, c.Variant, c.Samples, want)
		}
	}
	if res1.TotalRuns != 5*2*4+5*2*2 {
		t.Errorf("TotalRuns = %d, want %d", res1.TotalRuns, 5*2*4+5*2*2)
	}
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	systems := DefaultSystems(nil)
	serial := testSpec()
	serial.Parallelism = 1
	parallel := testSpec()
	parallel.Parallelism = 8
	var out1, out2 bytes.Buffer
	if _, err := Run(serial, systems, &out1); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(parallel, systems, &out2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Error("JSONL stream depends on worker-pool size")
	}
}

// TestRunClampsOversizedParallelism: an absurd Parallelism is clamped to
// the CPU count (like BuildTable's worker pool) and still reproduces the
// serial byte stream exactly.
func TestRunClampsOversizedParallelism(t *testing.T) {
	systems := DefaultSystems(nil)
	serial := testSpec()
	serial.Parallelism = 1
	huge := testSpec()
	huge.Parallelism = 1 << 20
	var out1, out2 bytes.Buffer
	if _, err := Run(serial, systems, &out1); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(huge, systems, &out2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Error("clamped worker pool changed the JSONL stream")
	}
}

func TestSummariesRankedByRiskRatio(t *testing.T) {
	res, err := Run(testSpec(), DefaultSystems(nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	// 2 systems x 2 variants.
	if len(res.Summaries) != 4 {
		t.Fatalf("got %d summaries, want 4", len(res.Summaries))
	}
	byVariant := make(map[string][]SystemSummary)
	for _, s := range res.Summaries {
		byVariant[s.Variant] = append(byVariant[s.Variant], s)
	}
	for variant, group := range byVariant {
		for i := 1; i < len(group); i++ {
			a, b := group[i-1], group[i]
			if a.HasRiskRatio && b.HasRiskRatio && a.RiskRatio > b.RiskRatio {
				t.Errorf("variant %s: summaries not sorted by risk ratio: %v > %v",
					variant, a.RiskRatio, b.RiskRatio)
			}
		}
	}
	// The baseline's own ratio is 1 by construction.
	for _, s := range res.Summaries {
		if s.System == BaselineSystem && s.HasRiskRatio && s.RiskRatio != 1 {
			t.Errorf("baseline risk ratio = %v, want 1", s.RiskRatio)
		}
	}
}

func TestRunRejectsUnknownSystem(t *testing.T) {
	s := testSpec()
	s.Systems = []string{"none", "acasx"} // needs a table
	if _, err := Run(s, DefaultSystems(nil), nil); err == nil {
		t.Fatal("expected error for system missing from the set")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.Presets = nil; s.ModelDraws = 0 },
		func(s *Spec) { s.Presets = []string{"no-such"} },
		func(s *Spec) { s.Systems = nil },
		func(s *Spec) { s.Systems = []string{"svo", "svo"} },
		func(s *Spec) { s.Samples = 0 },
		func(s *Spec) { s.Variants = []Variant{{Name: ""}} },
		func(s *Spec) { s.Variants = []Variant{{Name: "a"}, {Name: "a"}} },
		func(s *Spec) { s.Variants = []Variant{{Name: "a", Samples: -1}} },
		func(s *Spec) { s.ModelDraws = -1 },
	}
	for i, mutate := range bad {
		s := testSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted an invalid spec", i)
		}
	}
	if err := testSpec().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestFromConfig(t *testing.T) {
	text := `
campaign.name = parsed
campaign.presets = headon, overtake
campaign.model.draws = 3
campaign.systems = none, svo
campaign.samples = 6
campaign.seed = 99
run.coordination = false
campaign.variant.0.name = base
campaign.variant.1.name = fastscan
campaign.variant.1.decision.period = 0.5
campaign.variant.1.samples = 3
campaign.variant.1.tracker = false
`
	params, err := config.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	s, err := FromConfig(params)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "parsed" || s.ModelDraws != 3 || s.Samples != 6 || s.Seed != 99 {
		t.Errorf("scalar fields wrong: %+v", s)
	}
	if len(s.Presets) != 2 || s.Presets[0] != "headon" || s.Presets[1] != "overtake" {
		t.Errorf("presets = %v", s.Presets)
	}
	if len(s.Systems) != 2 {
		t.Errorf("systems = %v", s.Systems)
	}
	if s.Run.Coordination {
		t.Error("run.coordination = false not applied")
	}
	if len(s.Variants) != 2 {
		t.Fatalf("variants = %d, want 2", len(s.Variants))
	}
	v := s.Variants[1]
	if v.Name != "fastscan" || v.Samples != 3 {
		t.Errorf("variant 1 = %+v", v)
	}
	if v.DecisionPeriod == nil || *v.DecisionPeriod != 0.5 {
		t.Errorf("variant 1 decision period = %v", v.DecisionPeriod)
	}
	if v.UseTracker == nil || *v.UseTracker {
		t.Errorf("variant 1 tracker = %v", v.UseTracker)
	}
}

func TestFromConfigPresetsAll(t *testing.T) {
	params, err := config.Parse("campaign.presets = all\ncampaign.systems = none\n")
	if err != nil {
		t.Fatal(err)
	}
	s, err := FromConfig(params)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Presets) != len(encounter.PresetNames()) {
		t.Errorf("presets = %v, want all %v", s.Presets, encounter.PresetNames())
	}
}

// The campaign must actually show the system working: on the conflict
// presets the SVO-equipped pair has to beat the unequipped baseline.
func TestCampaignSeparatesSystems(t *testing.T) {
	s := DefaultSpec()
	s.Presets = []string{"headon", "crossing"}
	s.Systems = []string{"none", "svo"}
	s.Samples = 8
	s.Seed = 3
	res, err := Run(s, DefaultSystems(nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	var none, equipped *SystemSummary
	for i := range res.Summaries {
		switch res.Summaries[i].System {
		case "none":
			none = &res.Summaries[i]
		case "svo":
			equipped = &res.Summaries[i]
		}
	}
	if none == nil || equipped == nil {
		t.Fatal("missing summaries")
	}
	if none.PNMAC == 0 {
		t.Fatal("baseline NMAC probability is zero; conflict presets should collide")
	}
	if !equipped.HasRiskRatio || equipped.RiskRatio >= 1 {
		t.Errorf("equipped risk ratio = %v (has=%v), want < 1", equipped.RiskRatio, equipped.HasRiskRatio)
	}
}
