package campaign

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"acasxval/internal/encounter"
)

var update = flag.Bool("update", false, "rewrite golden files instead of comparing")

// goldenSpec is a tiny fixed campaign whose JSONL stream is pinned in
// testdata: it guards the record layout, the cell ordering and the
// seed-derivation chain against unintended drift.
func goldenSpec() Spec {
	s := DefaultSpec()
	s.Name = "golden"
	s.Presets = []string{"headon", "tailchase"}
	s.Scenarios = []Scenario{{Name: "custom", Params: encounter.PresetCrossing().Multi()}}
	s.ModelDraws = 1
	s.Systems = []string{"none", "svo"}
	s.Samples = 3
	s.Seed = 5
	return s
}

// TestGoldenCells pins the campaign JSONL byte stream. Regenerate with
// `go test ./internal/campaign -run Golden -update` after an intentional
// format or trajectory change.
func TestGoldenCells(t *testing.T) {
	var out bytes.Buffer
	if _, err := Run(goldenSpec(), DefaultSystems(nil), &out); err != nil {
		t.Fatal(err)
	}
	got := out.Bytes()

	golden := filepath.Join("testdata", "golden_cells.jsonl")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("campaign JSONL drifted from golden file\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestAxisGrowthKeepsCellResults: appending scenarios (the sweep -extra
// path) must not change the stochastic results of pre-existing cells —
// cell seeds derive from (scenario, system, variant) identity, not from
// the ordinal cell index.
func TestAxisGrowthKeepsCellResults(t *testing.T) {
	base := goldenSpec()
	grown := goldenSpec()
	grown.Scenarios = append(grown.Scenarios,
		Scenario{Name: "appended", Params: encounter.PresetOvertake().Multi()})

	baseRes, err := Run(base, DefaultSystems(nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	grownRes, err := Run(grown, DefaultSystems(nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	type key struct{ scenario, system, variant string }
	grownCells := make(map[key]CellResult, len(grownRes.Cells))
	for _, c := range grownRes.Cells {
		grownCells[key{c.Scenario, c.System, c.Variant}] = c
	}
	for _, want := range baseRes.Cells {
		got, ok := grownCells[key{want.Scenario, want.System, want.Variant}]
		if !ok {
			t.Fatalf("cell %s/%s/%s missing from grown campaign", want.Scenario, want.System, want.Variant)
		}
		// Everything except the ordinal index must be identical.
		got.Index = want.Index
		if !reflect.DeepEqual(got, want) {
			t.Errorf("cell %s/%s/%s changed when the axis grew:\ngot  %+v\nwant %+v",
				want.Scenario, want.System, want.Variant, got, want)
		}
	}
}

func TestExplicitScenarios(t *testing.T) {
	s := goldenSpec()
	res, err := Run(s, DefaultSystems(nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	// (2 presets + 1 scenario + 1 draw) x 2 systems x 1 variant.
	if len(res.Cells) != 8 {
		t.Fatalf("got %d cells, want 8", len(res.Cells))
	}
	found := false
	for _, c := range res.Cells {
		if len(c.Params) != encounter.NumParams {
			t.Fatalf("cell %d has %d params, want %d", c.Index, len(c.Params), encounter.NumParams)
		}
		p, err := c.EncounterParams()
		if err != nil {
			t.Fatal(err)
		}
		if got := encounter.Classify(p).Category.String(); got != c.Geometry {
			t.Errorf("cell %d geometry %q does not match params classification %q", c.Index, c.Geometry, got)
		}
		if c.Scenario == "custom" {
			found = true
			want := encounter.PresetCrossing().Vector()
			for i, g := range c.Params {
				if g != want[i] {
					t.Errorf("custom scenario param %d = %v, want %v", i, g, want[i])
				}
			}
		}
	}
	if !found {
		t.Error("explicit scenario missing from the cell stream")
	}

	bad := []func(*Spec){
		func(s *Spec) { s.Scenarios = []Scenario{{Name: ""}} },
		func(s *Spec) { s.Scenarios = append(s.Scenarios, s.Scenarios[0]) },
		func(s *Spec) { s.Scenarios = []Scenario{{Name: "headon"}} }, // clashes with preset
		func(s *Spec) {
			p := encounter.PresetCrossing()
			p.TimeToCPA = math.NaN()
			s.Scenarios = []Scenario{{Name: "nan", Params: p.Multi()}}
		},
	}
	for i, mutate := range bad {
		s := goldenSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted an invalid scenario axis", i)
		}
	}
	only := goldenSpec()
	only.Presets = nil
	only.ModelDraws = 0
	if err := only.Validate(); err != nil {
		t.Errorf("scenario-only campaign rejected: %v", err)
	}
}
