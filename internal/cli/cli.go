// Package cli holds the small helpers shared by the command-line tools in
// cmd/: logic-table acquisition (load from disk or build on the fly) and
// system-factory construction by name.
package cli

import (
	"fmt"
	"os"
	"runtime"
	"strings"

	"acasxval/internal/acasx"
	"acasxval/internal/fault"
	"acasxval/internal/sim"
	"acasxval/internal/sys"
)

// LoadOrBuildTable loads the logic table from path when it exists;
// otherwise it builds one (full or coarse resolution) and, when path is
// non-empty, saves it there for reuse.
func LoadOrBuildTable(path string, coarse bool, workers int) (*acasx.Table, error) {
	if path != "" {
		if _, err := os.Stat(path); err == nil {
			table, err := acasx.LoadTable(path)
			if err != nil {
				return nil, fmt.Errorf("loading %s: %w", path, err)
			}
			return table, nil
		}
	}
	cfg := acasx.DefaultConfig()
	if coarse {
		cfg = acasx.CoarseConfig()
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	cfg.Workers = workers
	table, err := acasx.BuildTable(cfg)
	if err != nil {
		return nil, err
	}
	if path != "" {
		if err := table.Save(path); err != nil {
			return nil, err
		}
	}
	return table, nil
}

// SystemFactory builds the named system pair through the sys registry
// (SystemNames lists the valid names). The table is required for the
// table-driven executives. Unknown-name errors quote the registry's live
// name list, so the CLIs and the sweep engine cannot drift apart.
func SystemFactory(name string, table *acasx.Table) (func() (sim.System, sim.System), error) {
	return sys.PairFactory(sys.Context{Table: table}, sys.Spec{Name: name})
}

// SystemNames renders the registered system names as a comma-separated
// list, for -system flag help text.
func SystemNames() string { return sys.NamesList() }

// FaultProfile resolves a -faults flag value through the fault preset
// menu; the empty string is the clean (zero) profile. Unknown-name errors
// quote the live preset list, so the CLIs and the fault package cannot
// drift apart.
func FaultProfile(name string) (fault.Profile, error) { return fault.Resolve(name) }

// FaultNames renders the fault preset names as a comma-separated list,
// for -faults flag help text.
func FaultNames() string { return strings.Join(fault.PresetNames(), ", ") }
