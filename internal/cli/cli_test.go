package cli

import (
	"os"
	"path/filepath"
	"testing"

	"acasxval/internal/acasx"
)

// truncateFile cuts a file to half its size, corrupting it.
func truncateFile(path string) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	return os.Truncate(path, info.Size()/2)
}

func TestLoadOrBuildTableBuildsAndCaches(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.acxt")
	// First call: builds coarse and saves.
	table, err := LoadOrBuildTable(path, true, 4)
	if err != nil {
		t.Fatal(err)
	}
	if table.BuildTime() <= 0 {
		t.Error("fresh build should record build time")
	}
	// Second call: loads from disk (no build time).
	loaded, err := LoadOrBuildTable(path, true, 4)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.BuildTime() != 0 {
		t.Error("expected a loaded table (zero build time)")
	}
	if loaded.NumEntries() != table.NumEntries() {
		t.Error("loaded table differs from built table")
	}
}

func TestLoadOrBuildTableEmptyPath(t *testing.T) {
	table, err := LoadOrBuildTable("", true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if table == nil {
		t.Fatal("nil table")
	}
}

func TestSystemFactoryNames(t *testing.T) {
	table, err := LoadOrBuildTable("", true, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"acasx", "svo", "none"} {
		tbl := table
		if name != "acasx" {
			tbl = nil
		}
		factory, err := SystemFactory(name, tbl)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		own, intr := factory()
		if own == nil || intr == nil {
			t.Fatalf("%s: nil systems", name)
		}
	}
}

func TestSystemFactoryErrors(t *testing.T) {
	if _, err := SystemFactory("acasx", nil); err == nil {
		t.Error("acasx without table accepted")
	}
	if _, err := SystemFactory("bogus", nil); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestLoadOrBuildTableRejectsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.acxt")
	if err := writeGarbage(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadOrBuildTable(path, true, 2); err == nil {
		t.Error("corrupt table file accepted")
	}
}

func writeGarbage(path string) error {
	table, err := acasx.BuildTable(func() acasx.Config {
		c := acasx.CoarseConfig()
		c.Grid.Horizon = 3
		return c
	}())
	if err != nil {
		return err
	}
	// Save a valid table then truncate it.
	if err := table.Save(path); err != nil {
		return err
	}
	return truncateFile(path)
}
