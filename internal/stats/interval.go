package stats

import "math"

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether x lies inside the closed interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// zForConfidence returns the standard-normal quantile for the given two-sided
// confidence level, e.g. 1.959964 for 0.95. Levels outside (0, 1) fall back
// to 0.95.
func zForConfidence(level float64) float64 {
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	return normQuantile(0.5 + level/2)
}

// normQuantile computes the standard normal quantile using the
// Beasley-Springer-Moro rational approximation (accurate to ~1e-9 across the
// open unit interval).
func normQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00,
	}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// MeanCI returns a normal-approximation confidence interval for the mean of
// the accumulated observations at the given confidence level (e.g. 0.95).
func (a *Accumulator) MeanCI(level float64) Interval {
	if a.n == 0 {
		return Interval{}
	}
	z := zForConfidence(level)
	half := z * a.StdErr()
	return Interval{Lo: a.mean - half, Hi: a.mean + half}
}

// WilsonCI returns the Wilson score confidence interval for a binomial
// proportion with successes out of trials at the given confidence level.
// The Wilson interval remains sensible for rare events (successes near 0),
// which is exactly the mid-air-collision regime the paper cares about.
func WilsonCI(successes, trials int, level float64) Interval {
	if trials <= 0 {
		return Interval{Lo: 0, Hi: 1}
	}
	z := zForConfidence(level)
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z2/(4*n*n)) / denom
	lo := center - half
	hi := center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Interval{Lo: lo, Hi: hi}
}

// Proportion is a convenience record for an estimated event probability.
type Proportion struct {
	Successes int
	Trials    int
}

// Estimate returns the point estimate successes/trials (0 when trials is 0).
func (p Proportion) Estimate() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// CI returns the Wilson interval for the proportion.
func (p Proportion) CI(level float64) Interval {
	return WilsonCI(p.Successes, p.Trials, level)
}
