// Package stats provides the light-weight statistics and deterministic
// random-number plumbing shared by the simulators, the Monte-Carlo harness
// and the genetic algorithm: streaming moment accumulators, confidence
// intervals for rare-event probabilities, histograms, and reproducible RNG
// fan-out so that parallel workers stay deterministic under a single seed.
package stats

import "math/rand/v2"

// NewRNG returns a deterministic PCG-backed random source for the given
// 64-bit seed. Two calls with the same seed produce identical streams.
func NewRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9E3779B97F4A7C15))
}

// splitmix64 advances a splitmix64 state and returns the next output. It is
// used to derive well-distributed child seeds from a parent seed.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// DeriveSeed deterministically derives the index-th child seed from a parent
// seed. Children with different indices are statistically independent, which
// lets parallel workers each own a private RNG while the whole run remains
// reproducible.
func DeriveSeed(parent uint64, index int) uint64 {
	state := parent ^ 0xD1B54A32D192ED03
	// Mix the index in twice through splitmix to decorrelate adjacent
	// indices.
	state += uint64(index) * 0x2545F4914F6CDD1D
	s := splitmix64(&state)
	state ^= s
	return splitmix64(&state)
}

// NewChildRNG returns a deterministic RNG for the index-th child of a parent
// seed. Shorthand for NewRNG(DeriveSeed(parent, index)).
func NewChildRNG(parent uint64, index int) *rand.Rand {
	return NewRNG(DeriveSeed(parent, index))
}
