// Package stats provides the light-weight statistics and deterministic
// random-number plumbing shared by the simulators, the Monte-Carlo harness
// and the genetic algorithm: streaming moment accumulators, confidence
// intervals for rare-event probabilities, histograms, and reproducible RNG
// fan-out so that parallel workers stay deterministic under a single seed.
package stats

import "math/rand/v2"

// NewRNG returns a deterministic PCG-backed random source for the given
// 64-bit seed. Two calls with the same seed produce identical streams.
func NewRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(SeedWords(seed)))
}

// SeedWords maps a 64-bit seed onto the two PCG state words NewRNG uses.
// Exposed so reseedable generators can reproduce NewRNG's stream exactly.
func SeedWords(seed uint64) (uint64, uint64) {
	return seed, seed ^ 0x9E3779B97F4A7C15
}

// ReseedableRNG is a rand.Rand whose PCG source can be re-seeded in place,
// so a hot loop can draw a fresh deterministic stream per iteration without
// allocating a new generator each time. rand.Rand holds no state beyond its
// source, so a re-seeded ReseedableRNG produces exactly the stream a freshly
// constructed generator with the same seed words would.
//
// The zero value is ready; seed it before first use. A ReseedableRNG must
// not be copied after first use (the Rand points at the embedded PCG).
type ReseedableRNG struct {
	src rand.PCG
	rnd *rand.Rand
}

// SeedPCG re-seeds the source with raw PCG state words and returns the
// generator.
func (r *ReseedableRNG) SeedPCG(s1, s2 uint64) *rand.Rand {
	r.src.Seed(s1, s2)
	if r.rnd == nil {
		r.rnd = rand.New(&r.src)
	}
	return r.rnd
}

// Seed re-seeds to NewRNG(seed)'s stream and returns the generator.
func (r *ReseedableRNG) Seed(seed uint64) *rand.Rand {
	s1, s2 := SeedWords(seed)
	return r.SeedPCG(s1, s2)
}

// SeedChild re-seeds to NewChildRNG(parent, index)'s stream and returns the
// generator.
func (r *ReseedableRNG) SeedChild(parent uint64, index int) *rand.Rand {
	return r.Seed(DeriveSeed(parent, index))
}

// splitmix64 advances a splitmix64 state and returns the next output. It is
// used to derive well-distributed child seeds from a parent seed.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// DeriveSeed deterministically derives the index-th child seed from a parent
// seed. Children with different indices are statistically independent, which
// lets parallel workers each own a private RNG while the whole run remains
// reproducible.
func DeriveSeed(parent uint64, index int) uint64 {
	state := parent ^ 0xD1B54A32D192ED03
	// Mix the index in twice through splitmix to decorrelate adjacent
	// indices.
	state += uint64(index) * 0x2545F4914F6CDD1D
	s := splitmix64(&state)
	state ^= s
	return splitmix64(&state)
}

// NewChildRNG returns a deterministic RNG for the index-th child of a parent
// seed. Shorthand for NewRNG(DeriveSeed(parent, index)).
func NewChildRNG(parent uint64, index int) *rand.Rand {
	return NewRNG(DeriveSeed(parent, index))
}
