package stats

import (
	"math"
	"testing"
)

// TestClopperPearsonCI pins the exact interval against externally computed
// reference values (R binom.test / scipy.stats.beta.ppf), including the 0/N
// and N/N edge cases where a normal-approximation interval degenerates to a
// point.
func TestClopperPearsonCI(t *testing.T) {
	cases := []struct {
		name      string
		successes int
		trials    int
		level     float64
		lo, hi    float64
	}{
		// Zero successes: Lo = 0, Hi = 1 - (alpha/2)^(1/n).
		{"0of10", 0, 10, 0.95, 0, 0.30850},
		{"0of100", 0, 100, 0.95, 0, 0.03622},
		{"0of1000", 0, 1000, 0.95, 0, 0.0036821},
		// All successes: Hi = 1, Lo = (alpha/2)^(1/n).
		{"10of10", 10, 10, 0.95, 0.69150, 1},
		{"100of100", 100, 100, 0.95, 0.96378, 1},
		// Interior values.
		{"1of10", 1, 10, 0.95, 0.0025286, 0.44502},
		{"5of10", 5, 10, 0.95, 0.18709, 0.81291},
		{"1of1000", 1, 1000, 0.95, 0.0000253, 0.0055589},
		// Different level.
		{"0of50at99", 0, 50, 0.99, 0, 0.10057},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			iv := ClopperPearsonCI(c.successes, c.trials, c.level)
			if math.Abs(iv.Lo-c.lo) > 1e-4 || math.Abs(iv.Hi-c.hi) > 1e-4 {
				t.Errorf("ClopperPearsonCI(%d, %d, %v) = [%.6f, %.6f], want [%.6f, %.6f]",
					c.successes, c.trials, c.level, iv.Lo, iv.Hi, c.lo, c.hi)
			}
			p := float64(c.successes) / float64(c.trials)
			if !iv.Contains(p) {
				t.Errorf("interval [%v, %v] does not contain point estimate %v", iv.Lo, iv.Hi, p)
			}
		})
	}
}

// TestZeroSuccessIntervalsNotDegenerate holds both binomial intervals to the
// rare-event contract: an observed-zero (or observed-all) stream must still
// report a nonempty uncertainty band, never the [0, 0] of the naive normal
// approximation.
func TestZeroSuccessIntervalsNotDegenerate(t *testing.T) {
	for _, n := range []int{1, 10, 100, 10000} {
		for _, ci := range []struct {
			name string
			f    func(s, n int, level float64) Interval
		}{
			{"ClopperPearson", ClopperPearsonCI},
			{"Wilson", WilsonCI},
		} {
			// Wilson's closed form leaves a ~1e-20 rounding residue at the
			// edges; exactness is only promised by Clopper–Pearson.
			zero := ci.f(0, n, 0.95)
			if zero.Lo > 1e-12 || zero.Hi <= 0 {
				t.Errorf("%s(0, %d) = [%v, %v]: want Lo ~ 0 and Hi > 0", ci.name, n, zero.Lo, zero.Hi)
			}
			full := ci.f(n, n, 0.95)
			if full.Hi < 1-1e-12 || full.Lo >= 1 {
				t.Errorf("%s(%d, %d) = [%v, %v]: want Hi ~ 1 and Lo < 1", ci.name, n, n, full.Lo, full.Hi)
			}
			if full.Lo <= 0 && n > 1 {
				t.Errorf("%s(%d, %d).Lo = %v: want > 0", ci.name, n, n, full.Lo)
			}
		}
	}
	// More trials with zero successes must tighten the upper bound.
	prev := 1.0
	for _, n := range []int{10, 100, 1000, 10000} {
		hi := ClopperPearsonCI(0, n, 0.95).Hi
		if hi >= prev {
			t.Errorf("ClopperPearsonCI(0, %d).Hi = %v did not shrink below %v", n, hi, prev)
		}
		prev = hi
	}
}

// TestClopperPearsonDegenerateInputs covers the guard paths.
func TestClopperPearsonDegenerateInputs(t *testing.T) {
	if iv := ClopperPearsonCI(0, 0, 0.95); iv != (Interval{Lo: 0, Hi: 1}) {
		t.Errorf("zero trials: got [%v, %v], want [0, 1]", iv.Lo, iv.Hi)
	}
	if iv := ClopperPearsonCI(-3, 10, 0.95); iv != ClopperPearsonCI(0, 10, 0.95) {
		t.Errorf("negative successes not clamped: [%v, %v]", iv.Lo, iv.Hi)
	}
	if iv := ClopperPearsonCI(12, 10, 0.95); iv != ClopperPearsonCI(10, 10, 0.95) {
		t.Errorf("overflowing successes not clamped: [%v, %v]", iv.Lo, iv.Hi)
	}
	// Out-of-range level falls back to 0.95, matching WilsonCI's contract.
	if iv := ClopperPearsonCI(3, 10, 0); iv != ClopperPearsonCI(3, 10, 0.95) {
		t.Errorf("level fallback mismatch: [%v, %v]", iv.Lo, iv.Hi)
	}
}

// TestRegIncBeta pins the regularized incomplete beta function against
// closed forms: I_x(1, b) = 1-(1-x)^b and I_x(a, 1) = x^a, plus symmetry.
func TestRegIncBeta(t *testing.T) {
	for _, x := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		for _, b := range []float64{1, 2.5, 10, 40} {
			got := RegIncBeta(1, b, x)
			want := 1 - math.Pow(1-x, b)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("I_%v(1, %v) = %v, want %v", x, b, got, want)
			}
			got = RegIncBeta(b, 1, x)
			want = math.Pow(x, b)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("I_%v(%v, 1) = %v, want %v", x, b, got, want)
			}
		}
		// I_x(a, b) + I_{1-x}(b, a) = 1.
		sum := RegIncBeta(3, 7, x) + RegIncBeta(7, 3, 1-x)
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("symmetry violated at x=%v: sum %v", x, sum)
		}
	}
	if got := RegIncBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %v, want 0", got)
	}
	if got := RegIncBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %v, want 1", got)
	}
}
