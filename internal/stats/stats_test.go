package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	a.AddN([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if a.N() != 8 {
		t.Fatalf("N = %d, want 8", a.N())
	}
	if got := a.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Population variance of this classic dataset is 4; sample variance is
	// 32/7.
	if got := a.Variance(); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", a.Min(), a.Max())
	}
	if got := a.Sum(); math.Abs(got-40) > 1e-9 {
		t.Errorf("Sum = %v, want 40", got)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.StdErr() != 0 {
		t.Error("empty accumulator should report zeros")
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Add(42)
	if a.Variance() != 0 {
		t.Error("single observation must have zero variance")
	}
	if a.Min() != 42 || a.Max() != 42 {
		t.Error("min/max of single observation wrong")
	}
}

// TestAccumulatorMergeEquivalence: merging two accumulators must be
// equivalent to accumulating the concatenated stream.
func TestAccumulatorMergeEquivalence(t *testing.T) {
	f := func(xs, ys []float64) bool {
		clean := func(vs []float64) []float64 {
			out := make([]float64, 0, len(vs))
			for _, v := range vs {
				if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
					out = append(out, v)
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		var a, b, all Accumulator
		a.AddN(xs)
		b.AddN(ys)
		all.AddN(xs)
		all.AddN(ys)
		a.Merge(&b)
		if a.N() != all.N() {
			return false
		}
		if a.N() == 0 {
			return true
		}
		tol := 1e-6 * (1 + math.Abs(all.Mean()))
		return math.Abs(a.Mean()-all.Mean()) < tol &&
			math.Abs(a.Variance()-all.Variance()) < 1e-4*(1+all.Variance()) &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeWithEmpty(t *testing.T) {
	var a, empty Accumulator
	a.AddN([]float64{1, 2, 3})
	before := a.Mean()
	a.Merge(&empty)
	if a.Mean() != before || a.N() != 3 {
		t.Error("merging an empty accumulator changed state")
	}
	var c Accumulator
	c.Merge(&a)
	if c.N() != 3 || c.Mean() != before {
		t.Error("merging into empty accumulator lost state")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p, want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median = %v, want 2", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestMeanStdDevHelpers(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := StdDev([]float64{1, 1, 1}); got != 0 {
		t.Errorf("StdDev of constants = %v", got)
	}
}

func TestNormQuantile(t *testing.T) {
	tests := []struct {
		p, want, tol float64
	}{
		{0.5, 0, 1e-9},
		{0.975, 1.959964, 1e-5},
		{0.995, 2.575829, 1e-5},
		{0.025, -1.959964, 1e-5},
		{0.0001, -3.719016, 1e-4},
	}
	for _, tt := range tests {
		if got := normQuantile(tt.p); math.Abs(got-tt.want) > tt.tol {
			t.Errorf("normQuantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsInf(normQuantile(0), -1) || !math.IsInf(normQuantile(1), 1) {
		t.Error("normQuantile boundary behaviour wrong")
	}
}

func TestWilsonCI(t *testing.T) {
	// Known value: 10 successes out of 100 at 95% gives roughly
	// [0.0552, 0.1744].
	iv := WilsonCI(10, 100, 0.95)
	if math.Abs(iv.Lo-0.0552) > 0.002 || math.Abs(iv.Hi-0.1744) > 0.002 {
		t.Errorf("WilsonCI(10,100) = [%v, %v]", iv.Lo, iv.Hi)
	}
	// Zero successes must still give a positive upper bound.
	iv0 := WilsonCI(0, 100, 0.95)
	if iv0.Lo != 0 {
		t.Errorf("lower bound for 0 successes = %v, want 0", iv0.Lo)
	}
	if iv0.Hi <= 0 || iv0.Hi > 0.1 {
		t.Errorf("upper bound for 0/100 = %v, want small positive", iv0.Hi)
	}
	// Degenerate trials.
	ivx := WilsonCI(0, 0, 0.95)
	if ivx.Lo != 0 || ivx.Hi != 1 {
		t.Errorf("WilsonCI(0,0) = %+v, want [0,1]", ivx)
	}
}

func TestWilsonCIContainsTruth(t *testing.T) {
	// Coverage sanity: simulate Bernoulli(0.3) experiments and check the
	// 95% interval contains 0.3 almost always.
	rng := NewRNG(7)
	misses := 0
	const experiments = 300
	for i := 0; i < experiments; i++ {
		successes := 0
		const trials = 200
		for j := 0; j < trials; j++ {
			if rng.Float64() < 0.3 {
				successes++
			}
		}
		if !WilsonCI(successes, trials, 0.95).Contains(0.3) {
			misses++
		}
	}
	if misses > experiments/10 {
		t.Errorf("Wilson interval missed truth %d/%d times", misses, experiments)
	}
}

func TestMeanCI(t *testing.T) {
	var a Accumulator
	rng := NewRNG(11)
	for i := 0; i < 10000; i++ {
		a.Add(rng.NormFloat64()*2 + 5)
	}
	iv := a.MeanCI(0.95)
	if !iv.Contains(5) {
		t.Errorf("95%% CI %+v does not contain true mean 5", iv)
	}
	if iv.Width() > 0.2 {
		t.Errorf("CI too wide: %v", iv.Width())
	}
	var empty Accumulator
	if got := empty.MeanCI(0.95); got != (Interval{}) {
		t.Errorf("empty CI = %+v", got)
	}
}

func TestProportion(t *testing.T) {
	p := Proportion{Successes: 3, Trials: 10}
	if got := p.Estimate(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("Estimate = %v", got)
	}
	if got := (Proportion{}).Estimate(); got != 0 {
		t.Errorf("empty Estimate = %v", got)
	}
	if !p.CI(0.95).Contains(0.3) {
		t.Error("CI should contain the point estimate")
	}
}

func TestDeriveSeedDistinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(42, i)
		if seen[s] {
			t.Fatalf("duplicate derived seed at index %d", i)
		}
		seen[s] = true
	}
	// Different parents must give different children.
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Error("different parents produced identical child seeds")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(99)
	b := NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewChildRNG(99, 1)
	d := NewChildRNG(99, 2)
	same := true
	for i := 0; i < 10; i++ {
		if c.Float64() != d.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Error("different child indices produced identical streams")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.9, 10, 100} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Fatalf("Total = %d, want 8", h.Total())
	}
	bins := h.Bins()
	// -1, 0, 1.9 -> bin 0; 2 -> bin 1; 5 -> bin 2; 9.9, 10, 100 -> bin 4.
	want := []int{3, 1, 1, 0, 3}
	for i := range want {
		if bins[i] != want[i] {
			t.Errorf("bin %d = %d, want %d (all: %v)", i, bins[i], want[i], bins)
		}
	}
	if got := h.BinCenter(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
	if out := h.Render(20); len(out) == 0 {
		t.Error("Render returned empty output")
	}
}

func TestHistogramPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("zero bins", func() { NewHistogram(0, 1, 0) })
	assertPanics("empty range", func() { NewHistogram(1, 1, 3) })
}
