package stats

import (
	"fmt"
	"strings"
)

// Histogram counts observations into uniform-width bins over [Lo, Hi).
// Observations outside the range are clamped into the first/last bin so no
// data is silently dropped.
type Histogram struct {
	lo, hi float64
	counts []int
	total  int
}

// NewHistogram creates a histogram with bins uniform bins spanning [lo, hi).
// It panics if bins < 1 or hi <= lo, which indicates a programming error.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram range must be non-empty")
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	idx := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.counts)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
	h.total++
}

// Bins returns a copy of the per-bin counts.
func (h *Histogram) Bins() []int {
	out := make([]int, len(h.counts))
	copy(out, h.counts)
	return out
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.hi - h.lo) / float64(len(h.counts))
	return h.lo + (float64(i)+0.5)*w
}

// Render draws a simple ASCII bar chart, one line per bin, scaled to width
// characters for the fullest bin.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	maxCount := 0
	for _, c := range h.counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var sb strings.Builder
	for i, c := range h.counts {
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		fmt.Fprintf(&sb, "%10.3g | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return sb.String()
}
