package stats

import "math"

// ClopperPearsonCI returns the exact (Clopper–Pearson) confidence interval
// for a binomial proportion with successes out of trials at the given
// two-sided confidence level. Unlike the normal approximation it never
// degenerates: at 0 successes the interval is [0, 1-(alpha/2)^(1/n)] and at
// n successes it is [(alpha/2)^(1/n), 1], so zero-event rare-event streams
// still report honest uncertainty. The exact interval is conservative
// (coverage at least the nominal level), which is the right bias for
// certification-style tail bounds.
func ClopperPearsonCI(successes, trials int, level float64) Interval {
	if trials <= 0 {
		return Interval{Lo: 0, Hi: 1}
	}
	if successes < 0 {
		successes = 0
	}
	if successes > trials {
		successes = trials
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	alpha := 1 - level
	n := float64(trials)
	s := float64(successes)
	iv := Interval{Lo: 0, Hi: 1}
	if successes > 0 {
		iv.Lo = betaQuantile(alpha/2, s, n-s+1)
	}
	if successes < trials {
		iv.Hi = betaQuantile(1-alpha/2, s+1, n-s)
	}
	return iv
}

// betaQuantile inverts the regularized incomplete beta function: it returns
// the x in [0, 1] with RegIncBeta(a, b, x) = p, by bisection (the CDF is
// monotone; ~100 halvings exhaust float64 resolution).
func betaQuantile(p, a, b float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 100; i++ {
		mid := 0.5 * (lo + hi)
		if RegIncBeta(a, b, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b) —
// the CDF of the Beta(a, b) distribution at x — via the standard continued
// fraction, using the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) to stay in the
// rapidly-converging region.
func RegIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lgab, _ := math.Lgamma(a + b)
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log1p(-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-16
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		mf := float64(m)
		m2 := 2 * mf
		aa := mf * (b - mf) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + mf) * (qab + mf) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// ZForConfidence returns the two-sided standard-normal quantile for the
// given confidence level (e.g. ~1.96 for 0.95). Levels outside (0, 1) fall
// back to 0.95.
func ZForConfidence(level float64) float64 { return zForConfidence(level) }
