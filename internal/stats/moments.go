package stats

import (
	"fmt"
	"math"
	"sort"
)

// AllFinite reports whether every value is a finite number (no NaN, no
// infinities) — the shared predicate behind the validation layers that
// must keep non-finite values out of genomes, archives and checkpoints.
func AllFinite(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Accumulator collects streaming first and second moments using Welford's
// numerically stable update, together with the extrema of the stream. The
// zero value is an empty accumulator ready for use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add feeds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddN feeds every observation of xs into the accumulator.
func (a *Accumulator) AddN(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// Merge combines another accumulator into a (parallel-reduction step),
// using Chan et al.'s pairwise update.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	a.mean += delta * float64(b.n) / float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = n
}

// N returns the number of observations seen so far.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean, or 0 for an empty accumulator.
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// Min returns the smallest observation, or 0 for an empty accumulator.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation, or 0 for an empty accumulator.
func (a *Accumulator) Max() float64 { return a.max }

// Sum returns the total of the observations.
func (a *Accumulator) Sum() float64 { return a.mean * float64(a.n) }

// String implements fmt.Stringer with a compact summary.
func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		a.n, a.Mean(), a.StdDev(), a.min, a.max)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var acc Accumulator
	acc.AddN(xs)
	return acc.Mean()
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	var acc Accumulator
	acc.AddN(xs)
	return acc.StdDev()
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between order statistics. It returns 0 for an empty slice.
// The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }
