package grid2d

import (
	"math"
	"strings"
	"testing"

	"acasxval/internal/mdp"
	"acasxval/internal/stats"
)

func mustModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustSolve(t *testing.T, m *Model) *LogicTable {
	t.Helper()
	lt, err := Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	return lt
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad YMax", func(c *Config) { c.YMax = 0 }},
		{"bad XMax", func(c *Config) { c.XMax = 0 }},
		{"own dist", func(c *Config) { c.OwnIntended = 0.5 }},
		{"level dist", func(c *Config) { c.LevelStay = 0.5 }},
		{"intruder dist", func(c *Config) { c.IntruderNoise = []VerticalOutcome{{0, 0.5}} }},
		{"negative intruder prob", func(c *Config) {
			c.IntruderNoise = []VerticalOutcome{{0, 1.5}, {1, -0.5}}
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("expected validation error")
			}
			if _, err := New(cfg); err == nil {
				t.Error("New should reject invalid config")
			}
		})
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := mustModel(t)
	cfg := m.Config()
	count := 0
	for yo := -cfg.YMax; yo <= cfg.YMax; yo++ {
		for xr := 0; xr <= cfg.XMax; xr++ {
			for yi := -cfg.YMax; yi <= cfg.YMax; yi++ {
				s := State{YO: yo, XR: xr, YI: yi}
				idx := m.Encode(s)
				if idx < 0 || idx >= m.NumStates() {
					t.Fatalf("Encode(%v) = %d out of range", s, idx)
				}
				if got := m.Decode(idx); got != s {
					t.Fatalf("Decode(Encode(%v)) = %v", s, got)
				}
				count++
			}
		}
	}
	if count+1 != m.NumStates() {
		t.Errorf("state count %d+1 != NumStates %d", count, m.NumStates())
	}
	// Terminal round trip.
	if got := m.Decode(m.Encode(State{XR: -1})); got.XR != -1 {
		t.Errorf("terminal decode = %v", got)
	}
}

func TestEncodeClamps(t *testing.T) {
	m := mustModel(t)
	over := m.Encode(State{YO: 100, XR: 5, YI: -100})
	want := m.Encode(State{YO: m.Config().YMax, XR: 5, YI: -m.Config().YMax})
	if over != want {
		t.Errorf("clamped encode = %d, want %d", over, want)
	}
}

func TestModelIsValidMDP(t *testing.T) {
	m := mustModel(t)
	if err := mdp.ValidateProblem(m, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestCollisionPredicate(t *testing.T) {
	if !(State{YO: 2, XR: 0, YI: 2}).Collision() {
		t.Error("co-located state not a collision")
	}
	if (State{YO: 2, XR: 1, YI: 2}).Collision() {
		t.Error("x_r=1 flagged as collision")
	}
	if (State{YO: 2, XR: 0, YI: 1}).Collision() {
		t.Error("different altitudes flagged as collision")
	}
}

func TestRewards(t *testing.T) {
	m := mustModel(t)
	cfg := m.Config()
	// Level action in a safe state earns the level reward.
	s := m.Encode(State{YO: 0, XR: 5, YI: 2})
	if got := m.Reward(s, int(Level)); got != cfg.LevelReward {
		t.Errorf("level reward = %v, want %v", got, cfg.LevelReward)
	}
	if got := m.Reward(s, int(Up)); got != -cfg.ManeuverCost {
		t.Errorf("up reward = %v, want %v", got, -cfg.ManeuverCost)
	}
	// Collision state: punishment dominates.
	c := m.Encode(State{YO: 0, XR: 0, YI: 0})
	if got := m.Reward(c, int(Level)); got != cfg.LevelReward-cfg.CollisionCost {
		t.Errorf("collision reward = %v", got)
	}
	// Terminal state is reward-free.
	if got := m.Reward(m.terminalIndex(), int(Up)); got != 0 {
		t.Errorf("terminal reward = %v", got)
	}
}

func TestTransitionsIntruderAlwaysMovesLeft(t *testing.T) {
	m := mustModel(t)
	s := m.Encode(State{YO: 0, XR: 5, YI: 1})
	for a := 0; a < m.NumActions(); a++ {
		for _, tr := range m.Transitions(s, a) {
			next := m.Decode(tr.State)
			if next.XR != 4 {
				t.Fatalf("action %d: successor %v has x_r %d, want 4", a, next, next.XR)
			}
		}
	}
}

func TestTransitionsAtZeroRangeTerminate(t *testing.T) {
	m := mustModel(t)
	s := m.Encode(State{YO: 1, XR: 0, YI: -1})
	ts := m.Transitions(s, int(Level))
	if len(ts) != 1 || ts[0].State != m.terminalIndex() || ts[0].Prob != 1 {
		t.Errorf("transitions at x_r=0 = %+v, want single terminal", ts)
	}
	if got := m.Transitions(m.terminalIndex(), 0); got != nil {
		t.Errorf("terminal transitions = %+v, want nil", got)
	}
}

func TestSolveProducesAvoidingPolicy(t *testing.T) {
	m := mustModel(t)
	lt := mustSolve(t, m)

	// Head-on at the same altitude two steps out: the logic must maneuver
	// (expected collision cost 10000 dwarfs the 100 maneuver cost).
	near := State{YO: 0, XR: 2, YI: 0}
	if got := lt.Action(near); got == Level {
		t.Errorf("logic levels off in imminent-collision state %v", near)
	}

	// Far away with a big altitude gap: level off is optimal (its +50
	// reward beats paying 100 for an unneeded maneuver).
	safe := State{YO: 3, XR: 9, YI: -3}
	if got := lt.Action(safe); got != Level {
		t.Errorf("logic maneuvers (%v) in safe state %v", got, safe)
	}
}

func TestSolvedValuesAreCertifiedOptimal(t *testing.T) {
	m := mustModel(t)
	lt := mustSolve(t, m)
	if r := mdp.BellmanResidual(m, lt.values, 1); r > 1e-6 {
		t.Errorf("Bellman residual = %v", r)
	}
}

func TestValueOfDoomedState(t *testing.T) {
	m := mustModel(t)
	lt := mustSolve(t, m)
	// A collision state at x_r = 0 has value <= -collisionCost + levelReward
	// (the punishment is unavoidable; the episode then terminates).
	v := lt.Value(State{YO: 0, XR: 0, YI: 0})
	if v > -9000 {
		t.Errorf("collision state value = %v, want <= -9000", v)
	}
}

func TestPolicyReducesCollisions(t *testing.T) {
	m := mustModel(t)
	lt := mustSolve(t, m)
	rng := stats.NewRNG(42)
	// Head-on from maximum range, same altitude.
	initial := State{YO: 0, XR: m.Config().XMax, YI: 0}
	const n = 2000
	baseline := m.CollisionRate(AlwaysLevel, initial, n, rng)
	withLogic := m.CollisionRate(lt.Action, initial, n, rng)
	if withLogic >= baseline {
		t.Errorf("logic collision rate %v not better than baseline %v", withLogic, baseline)
	}
	if baseline < 0.05 {
		t.Errorf("baseline collision rate %v suspiciously low for head-on", baseline)
	}
	if withLogic > 0.05 {
		t.Errorf("logic collision rate %v too high", withLogic)
	}
}

func TestSimulateEpisodeShape(t *testing.T) {
	m := mustModel(t)
	rng := stats.NewRNG(1)
	out := m.Simulate(AlwaysLevel, State{YO: 0, XR: 9, YI: 0}, rng)
	if out.Steps != 9 {
		t.Errorf("steps = %d, want 9", out.Steps)
	}
	if len(out.Path) != 10 {
		t.Errorf("path length = %d, want 10", len(out.Path))
	}
	if out.Maneuvers != 0 {
		t.Errorf("AlwaysLevel made %d maneuvers", out.Maneuvers)
	}
	// Path x_r decreases by exactly 1 each step.
	for i := 1; i < len(out.Path); i++ {
		if out.Path[i].XR != out.Path[i-1].XR-1 {
			t.Fatalf("x_r did not decrease monotonically: %v", out.Path)
		}
	}
}

func TestCollisionRateDegenerate(t *testing.T) {
	m := mustModel(t)
	if got := m.CollisionRate(AlwaysLevel, State{}, 0, stats.NewRNG(1)); got != 0 {
		t.Errorf("rate with n=0 = %v", got)
	}
}

func TestRenderSlice(t *testing.T) {
	m := mustModel(t)
	lt := mustSolve(t, m)
	out := lt.RenderSlice(0)
	if !strings.Contains(out, "y_o +3") || !strings.Contains(out, "y_o -3") {
		t.Errorf("render missing rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+7 { // header + 7 altitude rows
		t.Errorf("render has %d lines, want 8:\n%s", len(lines), out)
	}
	if !strings.ContainsAny(out, "^v") {
		t.Error("policy slice shows no maneuvers at all")
	}
}

func TestActionString(t *testing.T) {
	if Level.String() != "level" || Up.String() != "up" || Down.String() != "down" {
		t.Error("action names wrong")
	}
	if got := Action(9).String(); got != "Action(9)" {
		t.Errorf("unknown action = %q", got)
	}
}

func TestSampleOutcomeDistribution(t *testing.T) {
	rng := stats.NewRNG(5)
	outcomes := []VerticalOutcome{{Delta: 0, Prob: 0.5}, {Delta: 1, Prob: 0.3}, {Delta: -1, Prob: 0.2}}
	counts := map[int]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[sampleOutcome(outcomes, rng)]++
	}
	for _, o := range outcomes {
		got := float64(counts[o.Delta]) / n
		if math.Abs(got-o.Prob) > 0.01 {
			t.Errorf("delta %d frequency %v, want %v", o.Delta, got, o.Prob)
		}
	}
}

func BenchmarkSolveSectionIII(b *testing.B) {
	m, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRollout(b *testing.B) {
	m, err := New(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	lt, err := Solve(m)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(3)
	initial := State{YO: 0, XR: 9, YI: 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Simulate(lt.Action, initial, rng)
	}
}
