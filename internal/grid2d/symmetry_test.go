package grid2d

import (
	"math"
	"testing"
)

// TestValueMirrorSymmetry: the section III model is symmetric under
// reflecting both altitudes (y -> -y); the optimal values must be equal and
// the optimal actions mirrored (up <-> down) wherever the optimum is
// unique.
func TestValueMirrorSymmetry(t *testing.T) {
	m := mustModel(t)
	lt := mustSolve(t, m)
	cfg := m.Config()
	for yo := -cfg.YMax; yo <= cfg.YMax; yo++ {
		for xr := 0; xr <= cfg.XMax; xr++ {
			for yi := -cfg.YMax; yi <= cfg.YMax; yi++ {
				s := State{YO: yo, XR: xr, YI: yi}
				mirror := State{YO: -yo, XR: xr, YI: -yi}
				v1 := lt.Value(s)
				v2 := lt.Value(mirror)
				if math.Abs(v1-v2) > 1e-6 {
					t.Fatalf("value asymmetry at %v: %v vs %v", s, v1, v2)
				}
			}
		}
	}
}

// TestPolicyMirrorConsistency: mirrored states get mirrored (or equally
// valued) actions.
func TestPolicyMirrorConsistency(t *testing.T) {
	m := mustModel(t)
	lt := mustSolve(t, m)
	cfg := m.Config()
	mirrorAction := func(a Action) Action {
		switch a {
		case Up:
			return Down
		case Down:
			return Up
		default:
			return Level
		}
	}
	for yo := -cfg.YMax; yo <= cfg.YMax; yo++ {
		for xr := 0; xr <= cfg.XMax; xr++ {
			for yi := -cfg.YMax; yi <= cfg.YMax; yi++ {
				s := State{YO: yo, XR: xr, YI: yi}
				ms := State{YO: -yo, XR: xr, YI: -yi}
				a := lt.Action(s)
				mb := lt.Action(ms)
				if a == mirrorAction(mb) {
					continue
				}
				// Argmax ties are legitimate: accept when both actions are
				// equally valued in the original state.
				qa := actionValue(m, lt, s, a)
				qb := actionValue(m, lt, s, mirrorAction(mb))
				if math.Abs(qa-qb) > 1e-6 {
					t.Fatalf("policy asymmetry at %v: %v vs mirrored %v (q %v vs %v)",
						s, a, mb, qa, qb)
				}
			}
		}
	}
}

// actionValue computes Q(s, a) from the solved values.
func actionValue(m *Model, lt *LogicTable, s State, a Action) float64 {
	idx := m.Encode(s)
	q := m.Reward(idx, int(a))
	for _, tr := range m.Transitions(idx, int(a)) {
		q += tr.Prob * lt.values[tr.State]
	}
	return q
}
