package grid2d

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"acasxval/internal/mdp"
)

// LogicTable is the generated collision avoidance logic for the section III
// example: the optimal look-up table from state to action, exactly the
// artifact the model-based optimization process produces.
type LogicTable struct {
	model  *Model
	policy mdp.Policy
	values []float64
}

// Solve runs dynamic programming (value iteration) on the model and returns
// the optimal logic table. The example is episodic — the intruder passes
// behind the own-ship after at most XMax+1 steps — so the solve is
// undiscounted, like the fictional example in the paper.
func Solve(m *Model) (*LogicTable, error) {
	sol, err := mdp.ValueIteration(m, mdp.Options{
		Discount:  1,
		Tolerance: 1e-9,
		// The episode length bounds the number of sweeps needed; leave
		// generous room.
		MaxIterations: m.cfg.XMax + 10,
	})
	if err != nil {
		return nil, fmt.Errorf("grid2d: solve: %w", err)
	}
	if !sol.Converged {
		return nil, fmt.Errorf("grid2d: value iteration did not converge after %d sweeps (residual %v)",
			sol.Iterations, sol.Residual)
	}
	return &LogicTable{model: m, policy: sol.Policy, values: sol.Values}, nil
}

// Action looks up the optimal action for a state.
func (lt *LogicTable) Action(s State) Action {
	return Action(lt.policy.Action(lt.model.Encode(s)))
}

// Value returns the optimal expected future reward from a state.
func (lt *LogicTable) Value(s State) float64 {
	return lt.values[lt.model.Encode(s)]
}

// Model returns the model the table was generated from.
func (lt *LogicTable) Model() *Model { return lt.model }

// RenderSlice renders the policy decisions for a fixed intruder altitude as
// an ASCII table: rows are own-ship altitudes (top = +YMax), columns are
// relative horizontal distances 0..XMax. Each cell shows the action
// (. level, ^ up, v down).
func (lt *LogicTable) RenderSlice(yi int) string {
	cfg := lt.model.cfg
	var sb strings.Builder
	fmt.Fprintf(&sb, "intruder altitude y_i = %+d (columns: x_r 0..%d)\n", yi, cfg.XMax)
	for yo := cfg.YMax; yo >= -cfg.YMax; yo-- {
		fmt.Fprintf(&sb, "y_o %+d |", yo)
		for xr := 0; xr <= cfg.XMax; xr++ {
			var c byte
			switch lt.Action(State{YO: yo, XR: xr, YI: yi}) {
			case Up:
				c = '^'
			case Down:
				c = 'v'
			default:
				c = '.'
			}
			sb.WriteByte(' ')
			sb.WriteByte(c)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Rollout is the outcome of simulating one encounter under a decision rule.
type Rollout struct {
	// Collided reports whether a collision state was reached.
	Collided bool
	// Steps is the number of simulated steps.
	Steps int
	// TotalReward is the accumulated reward of the episode.
	TotalReward float64
	// Maneuvers counts up/down actions taken.
	Maneuvers int
	// Path records the visited states, starting with the initial state.
	Path []State
}

// Decider selects an action for a state; used so rollouts can compare the
// generated logic against baselines (e.g. never maneuvering).
type Decider func(State) Action

// AlwaysLevel is the do-nothing baseline decision rule.
func AlwaysLevel(State) Action { return Level }

// Simulate rolls out one episode from the initial state under the given
// decision rule, sampling the model's stochastic dynamics with rng.
func (m *Model) Simulate(decide Decider, initial State, rng *rand.Rand) Rollout {
	st := initial
	out := Rollout{Path: []State{st}}
	for st.XR >= 0 {
		a := decide(st)
		if st.Collision() {
			out.Collided = true
			out.TotalReward -= m.cfg.CollisionCost
		}
		if a == Level {
			out.TotalReward += m.cfg.LevelReward
		} else {
			out.TotalReward -= m.cfg.ManeuverCost
			out.Maneuvers++
		}
		if st.XR == 0 {
			break
		}
		st = m.step(st, a, rng)
		out.Path = append(out.Path, st)
		out.Steps++
	}
	return out
}

// step samples the successor of (st, a).
func (m *Model) step(st State, a Action, rng *rand.Rand) State {
	return State{
		YO: clampInt(st.YO+sampleOutcome(m.ownOutcomes(a), rng), -m.cfg.YMax, m.cfg.YMax),
		XR: st.XR - 1,
		YI: clampInt(st.YI+sampleOutcome(m.cfg.IntruderNoise, rng), -m.cfg.YMax, m.cfg.YMax),
	}
}

func sampleOutcome(outcomes []VerticalOutcome, rng *rand.Rand) int {
	u := rng.Float64()
	acc := 0.0
	for _, o := range outcomes {
		acc += o.Prob
		if u < acc {
			return o.Delta
		}
	}
	return outcomes[len(outcomes)-1].Delta
}

// CollisionRate estimates the collision probability from the given initial
// state over n rollouts under the decision rule.
func (m *Model) CollisionRate(decide Decider, initial State, n int, rng *rand.Rand) float64 {
	if n <= 0 {
		return 0
	}
	collisions := 0
	for i := 0; i < n; i++ {
		if m.Simulate(decide, initial, rng).Collided {
			collisions++
		}
	}
	return float64(collisions) / float64(n)
}
