// Package grid2d implements the paper's section III worked example: a
// fictional two-dimensional UAV collision avoidance system developed by
// model-based optimization.
//
// Two UAVs fly in a 2-D vertical plane on a discrete grid (Fig. 2). The
// own-ship sits at x = 0 and only moves vertically; the intruder moves one
// cell left per step (relative horizontal motion) and jitters vertically
// with white noise. The state is {y_o, x_r, y_i}: the own-ship's altitude,
// the relative horizontal distance, and the intruder's altitude. The
// own-ship chooses from {level off, move up, move down}; its dynamics are
// uncertain. A preference system punishes collision states with cost 10000,
// punishes maneuvers with cost 100 and rewards level-off with 50. Solving
// the resulting MDP with dynamic programming yields the look-up-table
// collision avoidance logic.
package grid2d

import (
	"fmt"

	"acasxval/internal/mdp"
)

// Action is the own-ship's vertical decision.
type Action int

// The three actions of the paper's hypothetical action set.
const (
	Level Action = iota // level off (0)
	Up                  // move up (+1)
	Down                // move down (-1)
)

// NumActions is the size of the action set.
const NumActions = 3

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case Level:
		return "level"
	case Up:
		return "up"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// delta returns the intended vertical movement of the action.
func (a Action) delta() int {
	switch a {
	case Up:
		return 1
	case Down:
		return -1
	default:
		return 0
	}
}

// VerticalOutcome is one probabilistic vertical movement outcome.
type VerticalOutcome struct {
	Delta int
	Prob  float64
}

// Config parameterizes the section III model. The defaults reproduce the
// paper exactly; the fields exist so the model-revision loop of Fig. 1
// ("manual model revision") can be exercised.
type Config struct {
	// YMax bounds altitudes to [-YMax, +YMax] (Fig. 2 shows 3).
	YMax int
	// XMax is the initial relative horizontal distance (Fig. 2 shows 9).
	XMax int
	// CollisionCost is the punishment for a collision state (paper: 10000).
	CollisionCost float64
	// ManeuverCost is the punishment for a move up/down action (paper: 100).
	ManeuverCost float64
	// LevelReward is the reward for the level-off action (paper: 50).
	LevelReward float64
	// OwnIntended, OwnStay, OwnOpposite are the own-ship's dynamics for a
	// maneuver action: probability of moving as intended, staying level,
	// and moving opposite (paper: 0.7 / 0.2 / 0.1 for "move up" -> {(0,1):
	// 0.7, (0,0): 0.2, (0,-1): 0.1}).
	OwnIntended, OwnStay, OwnOpposite float64
	// LevelStay, LevelDrift are the own-ship's dynamics for the level-off
	// action: probability of staying and of drifting one cell up or down
	// each ("similar distribution applies to the ... level off action" —
	// we keep the same 0.7 mass on the intended outcome and split the rest
	// symmetrically: 0.7 stay, 0.15 up, 0.15 down).
	LevelStay, LevelDrift float64
	// IntruderNoise is the intruder's vertical white-noise distribution
	// (paper: {0: 0.5, -1: 0.15, +1: 0.15, -2: 0.1, +2: 0.1}).
	IntruderNoise []VerticalOutcome
}

// DefaultConfig returns the paper's parameterization of the example.
func DefaultConfig() Config {
	return Config{
		YMax:          3,
		XMax:          9,
		CollisionCost: 10000,
		ManeuverCost:  100,
		LevelReward:   50,
		OwnIntended:   0.7,
		OwnStay:       0.2,
		OwnOpposite:   0.1,
		LevelStay:     0.7,
		LevelDrift:    0.15,
		IntruderNoise: []VerticalOutcome{
			{Delta: 0, Prob: 0.5},
			{Delta: -1, Prob: 0.15},
			{Delta: +1, Prob: 0.15},
			{Delta: -2, Prob: 0.1},
			{Delta: +2, Prob: 0.1},
		},
	}
}

// Validate checks that the configuration is a well-formed model.
func (c Config) Validate() error {
	if c.YMax < 1 {
		return fmt.Errorf("grid2d: YMax %d < 1", c.YMax)
	}
	if c.XMax < 1 {
		return fmt.Errorf("grid2d: XMax %d < 1", c.XMax)
	}
	if s := c.OwnIntended + c.OwnStay + c.OwnOpposite; !probEq(s, 1) {
		return fmt.Errorf("grid2d: own maneuver distribution sums to %v", s)
	}
	if s := c.LevelStay + 2*c.LevelDrift; !probEq(s, 1) {
		return fmt.Errorf("grid2d: level-off distribution sums to %v", s)
	}
	sum := 0.0
	for _, o := range c.IntruderNoise {
		if o.Prob < 0 {
			return fmt.Errorf("grid2d: negative intruder probability %v", o.Prob)
		}
		sum += o.Prob
	}
	if !probEq(sum, 1) {
		return fmt.Errorf("grid2d: intruder distribution sums to %v", sum)
	}
	return nil
}

func probEq(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// State is a point of the example's state space: the own-ship altitude y_o,
// the relative horizontal distance x_r (also the intruder's x coordinate),
// and the intruder altitude y_i.
type State struct {
	YO, XR, YI int
}

// Collision reports whether the state is a collision state per the paper:
// same altitude at zero horizontal separation.
func (s State) Collision() bool { return s.XR == 0 && s.YO == s.YI }

// String implements fmt.Stringer.
func (s State) String() string { return fmt.Sprintf("{yo:%d xr:%d yi:%d}", s.YO, s.XR, s.YI) }

// Model is the section III MDP. It implements mdp.Problem with the state
// space {y_o, x_r, y_i} plus one absorbing terminal state entered when the
// intruder passes behind the own-ship (x_r < 0).
type Model struct {
	cfg   Config
	ySpan int // 2*YMax + 1
	xSpan int // XMax + 1
}

var _ mdp.Problem = (*Model)(nil)

// New builds the model, validating the configuration.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Model{
		cfg:   cfg,
		ySpan: 2*cfg.YMax + 1,
		xSpan: cfg.XMax + 1,
	}, nil
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// NumStates implements mdp.Problem: all (y_o, x_r, y_i) combinations plus
// the terminal state.
func (m *Model) NumStates() int { return m.ySpan*m.xSpan*m.ySpan + 1 }

// NumActions implements mdp.Problem.
func (m *Model) NumActions() int { return NumActions }

// terminalIndex is the flat index of the absorbing post-encounter state.
func (m *Model) terminalIndex() int { return m.ySpan * m.xSpan * m.ySpan }

// Encode converts a State to its dense index. Altitudes are clamped to
// [-YMax, YMax]; x_r below zero maps to the terminal state.
func (m *Model) Encode(s State) int {
	if s.XR < 0 {
		return m.terminalIndex()
	}
	yo := clampInt(s.YO, -m.cfg.YMax, m.cfg.YMax) + m.cfg.YMax
	yi := clampInt(s.YI, -m.cfg.YMax, m.cfg.YMax) + m.cfg.YMax
	xr := clampInt(s.XR, 0, m.cfg.XMax)
	return (yo*m.xSpan+xr)*m.ySpan + yi
}

// Decode converts a dense index back to a State. The terminal state decodes
// to XR = -1.
func (m *Model) Decode(idx int) State {
	if idx == m.terminalIndex() {
		return State{XR: -1}
	}
	yi := idx%m.ySpan - m.cfg.YMax
	idx /= m.ySpan
	xr := idx % m.xSpan
	yo := idx/m.xSpan - m.cfg.YMax
	return State{YO: yo, XR: xr, YI: yi}
}

// ownOutcomes returns the own-ship's vertical movement distribution under
// the given action, per the paper's probabilistic own-ship dynamics.
func (m *Model) ownOutcomes(a Action) []VerticalOutcome {
	switch a {
	case Up:
		return []VerticalOutcome{
			{Delta: +1, Prob: m.cfg.OwnIntended},
			{Delta: 0, Prob: m.cfg.OwnStay},
			{Delta: -1, Prob: m.cfg.OwnOpposite},
		}
	case Down:
		return []VerticalOutcome{
			{Delta: -1, Prob: m.cfg.OwnIntended},
			{Delta: 0, Prob: m.cfg.OwnStay},
			{Delta: +1, Prob: m.cfg.OwnOpposite},
		}
	default:
		return []VerticalOutcome{
			{Delta: 0, Prob: m.cfg.LevelStay},
			{Delta: +1, Prob: m.cfg.LevelDrift},
			{Delta: -1, Prob: m.cfg.LevelDrift},
		}
	}
}

// Transitions implements mdp.Problem. The intruder always moves one cell
// left; both UAVs' vertical moves follow their noise distributions, with
// altitudes clamped to the airspace bounds (probability mass of moves past a
// bound collapses onto the bound).
func (m *Model) Transitions(s, a int) []mdp.Transition {
	if s == m.terminalIndex() {
		return nil // absorbing: episode over
	}
	st := m.Decode(s)
	if st.XR == 0 {
		// The intruder passes behind the own-ship; the encounter ends.
		return []mdp.Transition{{State: m.terminalIndex(), Prob: 1}}
	}
	action := Action(a)
	own := m.ownOutcomes(action)
	// Accumulate probabilities: clamping can merge outcomes.
	acc := make(map[int]float64, len(own)*len(m.cfg.IntruderNoise))
	for _, oo := range own {
		for _, io := range m.cfg.IntruderNoise {
			next := State{
				YO: clampInt(st.YO+oo.Delta, -m.cfg.YMax, m.cfg.YMax),
				XR: st.XR - 1,
				YI: clampInt(st.YI+io.Delta, -m.cfg.YMax, m.cfg.YMax),
			}
			acc[m.Encode(next)] += oo.Prob * io.Prob
		}
	}
	ts := make([]mdp.Transition, 0, len(acc))
	for next, p := range acc {
		ts = append(ts, mdp.Transition{State: next, Prob: p})
	}
	return ts
}

// Reward implements mdp.Problem: the action preference (level-off reward,
// maneuver cost) plus the collision punishment when the current state is a
// collision state.
func (m *Model) Reward(s, a int) float64 {
	if s == m.terminalIndex() {
		return 0
	}
	st := m.Decode(s)
	r := 0.0
	if Action(a) == Level {
		r += m.cfg.LevelReward
	} else {
		r -= m.cfg.ManeuverCost
	}
	if st.Collision() {
		r -= m.cfg.CollisionCost
	}
	return r
}

func clampInt(v, lo, hi int) int {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}
