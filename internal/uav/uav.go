// Package uav models the point-mass unmanned aircraft used in the
// three-dimensional encounter simulations: kinematic flight following an
// initial velocity (the flight plan), vertical maneuvers commanded by a
// collision avoidance system and executed with bounded acceleration after a
// response delay, white-noise environment disturbance, and a noisy ADS-B
// surveillance broadcast.
//
// The paper's simulation section (VI.C) specifies exactly this: "the two
// UAVs fly following their initial velocities but also be affected by
// environment disturbance"; "if collision avoidance commands are emitted,
// UAVs will then maneuver according to the commands"; "we explicitly model
// the sensor noise by adding white noise to the received information".
package uav

import (
	"fmt"
	"math"
	"math/rand/v2"

	"acasxval/internal/geom"
)

// Config holds the performance and disturbance parameters of a UAV.
type Config struct {
	// VerticalAccel is the maximum vertical acceleration used to capture a
	// commanded vertical rate, m/s^2. ACAS-style maneuvers are flown at
	// about g/4.
	VerticalAccel float64
	// StrengthenAccel is the vertical acceleration for strengthened
	// (increased-rate) advisories, m/s^2; about g/3.
	StrengthenAccel float64
	// MaxVerticalRate limits |vertical speed|, m/s.
	MaxVerticalRate float64
	// ResponseDelay is the time between receiving a new command and
	// beginning to maneuver, seconds. UAV autopilots respond faster than
	// pilots; default 1 s.
	ResponseDelay float64
	// TurnRate is the maximum heading rate for commanded turns, rad/s
	// (default: a standard-rate 3 degrees/s turn).
	TurnRate float64
	// VerticalNoise is the diffusion coefficient of the Brownian vertical
	// rate disturbance: the vertical speed accumulates noise with standard
	// deviation VerticalNoise*sqrt(t) over t seconds. Units m/s per
	// sqrt-second.
	VerticalNoise float64
	// SpeedNoise is the diffusion coefficient of the ground-speed
	// disturbance (gusts), m/s per sqrt-second.
	SpeedNoise float64
	// HeadingNoise is the diffusion coefficient of the heading
	// disturbance, rad per sqrt-second.
	HeadingNoise float64
}

// DefaultConfig returns a plausible small-UAV parameterization.
func DefaultConfig() Config {
	return Config{
		VerticalAccel:   geom.G / 4,
		StrengthenAccel: geom.G / 3,
		MaxVerticalRate: geom.FPM(3000),
		ResponseDelay:   1.0,
		TurnRate:        3 * math.Pi / 180,
		VerticalNoise:   0.6,
		SpeedNoise:      0.4,
		HeadingNoise:    0.004,
	}
}

// Validate checks the configuration for physical sanity.
func (c Config) Validate() error {
	if c.VerticalAccel <= 0 {
		return fmt.Errorf("uav: VerticalAccel %v <= 0", c.VerticalAccel)
	}
	if c.StrengthenAccel < c.VerticalAccel {
		return fmt.Errorf("uav: StrengthenAccel %v < VerticalAccel %v", c.StrengthenAccel, c.VerticalAccel)
	}
	if c.MaxVerticalRate <= 0 {
		return fmt.Errorf("uav: MaxVerticalRate %v <= 0", c.MaxVerticalRate)
	}
	if c.ResponseDelay < 0 {
		return fmt.Errorf("uav: negative ResponseDelay %v", c.ResponseDelay)
	}
	if c.TurnRate < 0 {
		return fmt.Errorf("uav: negative TurnRate %v", c.TurnRate)
	}
	if c.VerticalNoise < 0 || c.SpeedNoise < 0 || c.HeadingNoise < 0 {
		return fmt.Errorf("uav: negative noise sigma")
	}
	return nil
}

// State is the true kinematic state of a UAV.
type State struct {
	Pos geom.Vec3
	Vel geom.Velocity
}

// VelVec returns the Cartesian velocity.
func (s State) VelVec() geom.Vec3 { return s.Vel.Vec() }

// Command is a maneuver command from a collision avoidance system. Vertical
// and horizontal guidance can be commanded independently: ACAS-style logic
// commands vertical rates, velocity-obstacle methods command headings.
type Command struct {
	// HasVS makes TargetVS active.
	HasVS bool
	// TargetVS is the commanded vertical rate, m/s (positive up).
	TargetVS float64
	// Strengthen selects the higher vertical acceleration limit.
	Strengthen bool
	// HasHeading makes TargetHeading active.
	HasHeading bool
	// TargetHeading is the commanded bearing, radians.
	TargetHeading float64
}

// UAV is a simulated aircraft. Create one with New; advance it with Step.
type UAV struct {
	cfg  Config
	st   State
	plan geom.Velocity // the flight-plan velocity flown when no command is active

	cmd       Command
	hasCmd    bool
	delayLeft float64
}

// New creates a UAV with the given configuration and initial state. The
// initial velocity becomes the flight plan the aircraft tracks when no
// avoidance command is active.
func New(cfg Config, initial State) (*UAV, error) {
	u := &UAV{}
	if err := u.Init(cfg, initial); err != nil {
		return nil, err
	}
	return u, nil
}

// Init (re)initializes the aircraft in place: validate and install the
// configuration, then Reset to the initial state. It lets a caller embed a
// UAV by value and rebuild it without allocating.
func (u *UAV) Init(cfg Config, initial State) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	u.cfg = cfg
	u.Reset(initial)
	return nil
}

// Reset returns the aircraft to a fresh-from-New state under its current
// configuration: the initial velocity becomes the new flight plan and any
// active command (and pending response delay) is discarded. A reset UAV
// flies the byte-identical trajectory of a newly constructed one given the
// same disturbance stream.
func (u *UAV) Reset(initial State) {
	u.st = initial
	u.plan = initial.Vel
	u.cmd = Command{}
	u.hasCmd = false
	u.delayLeft = 0
}

// State returns the current true state.
func (u *UAV) State() State { return u.st }

// Plan returns the flight-plan velocity.
func (u *UAV) Plan() geom.Velocity { return u.plan }

// HasCommand reports whether an avoidance command is active.
func (u *UAV) HasCommand() bool { return u.hasCmd }

// ActiveCommand returns the active command and whether there is one.
func (u *UAV) ActiveCommand() (Command, bool) { return u.cmd, u.hasCmd }

// Maneuvering reports whether the UAV is currently deviating from its flight
// plan to execute a command (i.e. a command is active and the response delay
// has elapsed).
func (u *UAV) Maneuvering() bool { return u.hasCmd && u.delayLeft <= 0 }

// Command issues a vertical-rate command. Re-issuing the same target keeps
// the current compliance state; a changed target restarts the response
// delay only if the aircraft has not already begun maneuvering (a
// maneuvering aircraft transitions between advisories without re-incurring
// the initial delay, matching ACAS pilot-response modeling).
func (u *UAV) Command(cmd Command) {
	if u.hasCmd && u.cmd == cmd {
		return
	}
	already := u.Maneuvering()
	u.cmd = cmd
	u.hasCmd = true
	if !already {
		u.delayLeft = u.cfg.ResponseDelay
	}
}

// ClearCommand cancels any active command; the aircraft returns to its
// flight-plan vertical rate.
func (u *UAV) ClearCommand() {
	u.hasCmd = false
	u.delayLeft = 0
}

// targetVS returns the vertical rate the aircraft is currently trying to
// fly and the acceleration limit for capturing it.
func (u *UAV) targetVS() (vs, accel float64) {
	if u.Maneuvering() && u.cmd.HasVS {
		a := u.cfg.VerticalAccel
		if u.cmd.Strengthen {
			a = u.cfg.StrengthenAccel
		}
		return u.cmd.TargetVS, a
	}
	return u.plan.Vs, u.cfg.VerticalAccel
}

// headingStep returns the heading change to apply this step: turning
// toward the commanded heading at the configured turn rate when a heading
// command is active, zero otherwise.
func (u *UAV) headingStep(dt float64) float64 {
	if !u.Maneuvering() || !u.cmd.HasHeading || u.cfg.TurnRate == 0 {
		return 0
	}
	diff := geom.WrapSigned(u.cmd.TargetHeading - u.st.Vel.Psi)
	return geom.Clamp(diff, -u.cfg.TurnRate*dt, u.cfg.TurnRate*dt)
}

// Step advances the aircraft by dt seconds, applying command capture
// dynamics and sampling the white-noise disturbance from rng. A nil rng
// disables disturbance (deterministic flight).
func (u *UAV) Step(dt float64, rng *rand.Rand) {
	if dt <= 0 {
		return
	}
	if u.hasCmd && u.delayLeft > 0 {
		u.delayLeft -= dt
	}

	targetVS, accel := u.targetVS()

	// Capture the target vertical rate with bounded acceleration.
	dv := targetVS - u.st.Vel.Vs
	maxDelta := accel * dt
	dv = geom.Clamp(dv, -maxDelta, maxDelta)
	vs := u.st.Vel.Vs + dv

	gs := u.st.Vel.Gs
	psi := u.st.Vel.Psi + u.headingStep(dt)
	if rng != nil {
		// White-noise (Brownian) disturbance: increments scale with
		// sqrt(dt) so the accumulated variance over a fixed wall-clock
		// interval does not depend on the integration step size.
		sqrtDt := math.Sqrt(dt)
		vs += u.cfg.VerticalNoise * rng.NormFloat64() * sqrtDt
		gs += u.cfg.SpeedNoise * rng.NormFloat64() * sqrtDt
		psi += u.cfg.HeadingNoise * rng.NormFloat64() * sqrtDt
	}
	vs = geom.Clamp(vs, -u.cfg.MaxVerticalRate, u.cfg.MaxVerticalRate)
	if gs < 0 {
		gs = 0
	}

	u.st.Vel = geom.Velocity{Gs: gs, Psi: geom.WrapAngle(psi), Vs: vs}
	u.st.Pos = u.st.Pos.Add(u.st.Vel.Vec().Scale(dt))
}
