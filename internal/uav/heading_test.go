package uav

import (
	"math"
	"testing"

	"acasxval/internal/geom"
)

func TestHeadingCommandTurnsAtRateLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ResponseDelay = 0
	u, err := New(cfg, State{Vel: geom.Velocity{Gs: 50, Psi: 0}})
	if err != nil {
		t.Fatal(err)
	}
	target := math.Pi / 2
	u.Command(Command{HasHeading: true, TargetHeading: target})
	u.Step(1, nil)
	// After 1 s the heading change equals the turn-rate limit.
	if got := u.State().Vel.Psi; math.Abs(got-cfg.TurnRate) > 1e-9 {
		t.Errorf("psi after 1 s = %v, want %v", got, cfg.TurnRate)
	}
	// Eventually the target is captured exactly.
	for i := 0; i < 60; i++ {
		u.Step(1, nil)
	}
	if got := u.State().Vel.Psi; math.Abs(geom.WrapSigned(got-target)) > 1e-9 {
		t.Errorf("psi after capture = %v, want %v", got, target)
	}
}

func TestHeadingCommandShortestWay(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ResponseDelay = 0
	// Heading 0.1 rad, target 2*pi - 0.1: the shortest way is negative
	// (through zero), not the long way around.
	u, err := New(cfg, State{Vel: geom.Velocity{Gs: 50, Psi: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	u.Command(Command{HasHeading: true, TargetHeading: 2*math.Pi - 0.1})
	u.Step(1, nil)
	got := geom.WrapSigned(u.State().Vel.Psi - 0.1)
	if got >= 0 {
		t.Errorf("turned the long way: delta %v", got)
	}
}

func TestHeadingWithoutCommandUnchanged(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ResponseDelay = 0
	u, err := New(cfg, State{Vel: geom.Velocity{Gs: 50, Psi: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Vertical-only command must not touch the heading.
	u.Command(Command{HasVS: true, TargetVS: 5})
	for i := 0; i < 10; i++ {
		u.Step(1, nil)
	}
	if got := u.State().Vel.Psi; got != 1 {
		t.Errorf("psi = %v, want unchanged 1", got)
	}
}

func TestCombinedVerticalAndHeadingCommand(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ResponseDelay = 0
	u, err := New(cfg, State{Vel: geom.Velocity{Gs: 50, Psi: 0}})
	if err != nil {
		t.Fatal(err)
	}
	u.Command(Command{
		HasVS: true, TargetVS: geom.FPM(1500),
		HasHeading: true, TargetHeading: math.Pi / 4,
	})
	for i := 0; i < 60; i++ {
		u.Step(1, nil)
	}
	st := u.State()
	if math.Abs(st.Vel.Vs-geom.FPM(1500)) > 1e-9 {
		t.Errorf("vs = %v", st.Vel.Vs)
	}
	if math.Abs(geom.WrapSigned(st.Vel.Psi-math.Pi/4)) > 1e-9 {
		t.Errorf("psi = %v", st.Vel.Psi)
	}
}

func TestZeroTurnRateDisablesHeading(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ResponseDelay = 0
	cfg.TurnRate = 0
	u, err := New(cfg, State{Vel: geom.Velocity{Gs: 50, Psi: 0}})
	if err != nil {
		t.Fatal(err)
	}
	u.Command(Command{HasHeading: true, TargetHeading: 1})
	u.Step(1, nil)
	if got := u.State().Vel.Psi; got != 0 {
		t.Errorf("psi = %v with zero turn rate", got)
	}
}
