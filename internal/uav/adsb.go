package uav

import (
	"fmt"
	"math/rand/v2"

	"acasxval/internal/geom"
)

// ADSBReport is one surveillance message: the broadcast state of an aircraft
// as received by a peer, i.e. the true state corrupted by sensor noise.
type ADSBReport struct {
	// Pos is the reported position.
	Pos geom.Vec3
	// Vel is the reported Cartesian velocity.
	Vel geom.Vec3
	// Time is the simulation time of the report, seconds.
	Time float64
	// Valid is false for a dropped message (reception failure).
	Valid bool
}

// SensorModel describes the ADS-B error model: white noise added to the
// received position and velocity, plus an optional message drop rate. The
// paper: "We assume that in each simulation step the UAVs broadcast their
// state information (position, velocity) via ADS-B. We explicitly model the
// sensor noise by adding white noise to the received information."
type SensorModel struct {
	// HorizontalPosSigma is the standard deviation of horizontal position
	// error, metres (GPS-grade ~ 10 m).
	HorizontalPosSigma float64
	// VerticalPosSigma is the standard deviation of altitude error, metres.
	VerticalPosSigma float64
	// VelSigma is the standard deviation of each velocity component error,
	// m/s.
	VelSigma float64
	// DropRate is the probability that a broadcast is not received at all.
	DropRate float64
}

// DefaultSensorModel returns a GPS/ADS-B-grade error model.
func DefaultSensorModel() SensorModel {
	return SensorModel{
		HorizontalPosSigma: 10,
		VerticalPosSigma:   4,
		VelSigma:           0.5,
		DropRate:           0,
	}
}

// Validate checks the model parameters.
func (m SensorModel) Validate() error {
	if m.HorizontalPosSigma < 0 || m.VerticalPosSigma < 0 || m.VelSigma < 0 {
		return fmt.Errorf("uav: negative sensor sigma")
	}
	if m.DropRate < 0 || m.DropRate > 1 {
		return fmt.Errorf("uav: drop rate %v outside [0, 1]", m.DropRate)
	}
	return nil
}

// Observe produces the ADS-B report a peer receives for the given true
// state at time now. A nil rng yields a noiseless report (useful for
// perfect-surveillance ablations).
func (m SensorModel) Observe(st State, now float64, rng *rand.Rand) ADSBReport {
	rep := ADSBReport{
		Pos:   st.Pos,
		Vel:   st.VelVec(),
		Time:  now,
		Valid: true,
	}
	if rng == nil {
		return rep
	}
	if m.DropRate > 0 && rng.Float64() < m.DropRate {
		rep.Valid = false
		return rep
	}
	rep.Pos.X += m.HorizontalPosSigma * rng.NormFloat64()
	rep.Pos.Y += m.HorizontalPosSigma * rng.NormFloat64()
	rep.Pos.Z += m.VerticalPosSigma * rng.NormFloat64()
	rep.Vel.X += m.VelSigma * rng.NormFloat64()
	rep.Vel.Y += m.VelSigma * rng.NormFloat64()
	rep.Vel.Z += m.VelSigma * rng.NormFloat64()
	return rep
}
