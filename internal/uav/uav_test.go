package uav

import (
	"math"
	"testing"

	"acasxval/internal/geom"
	"acasxval/internal/stats"
)

func newTestUAV(t *testing.T, st State) *UAV {
	t.Helper()
	u, err := New(DefaultConfig(), st)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero accel", func(c *Config) { c.VerticalAccel = 0 }},
		{"weak strengthen", func(c *Config) { c.StrengthenAccel = c.VerticalAccel / 2 }},
		{"zero max rate", func(c *Config) { c.MaxVerticalRate = 0 }},
		{"negative delay", func(c *Config) { c.ResponseDelay = -1 }},
		{"negative noise", func(c *Config) { c.VerticalNoise = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("expected validation error")
			}
			if _, err := New(cfg, State{}); err == nil {
				t.Error("New should reject invalid config")
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestStraightFlightDeterministic(t *testing.T) {
	st := State{
		Pos: geom.Vec3{X: 0, Y: 0, Z: 1000},
		Vel: geom.Velocity{Gs: 50, Psi: 0, Vs: 0},
	}
	u := newTestUAV(t, st)
	for i := 0; i < 10; i++ {
		u.Step(1, nil)
	}
	got := u.State().Pos
	want := geom.Vec3{X: 500, Y: 0, Z: 1000}
	if got.DistanceTo(want) > 1e-9 {
		t.Errorf("position after 10 s = %v, want %v", got, want)
	}
}

func TestClimbCommandCapture(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ResponseDelay = 0
	u, err := New(cfg, State{Vel: geom.Velocity{Gs: 50, Vs: 0}})
	if err != nil {
		t.Fatal(err)
	}
	target := geom.FPM(1500)
	u.Command(Command{HasVS: true, TargetVS: target})
	// With a = g/4 ~ 2.45 m/s^2, capturing 7.62 m/s takes ~3.1 s.
	for i := 0; i < 50; i++ {
		u.Step(0.1, nil)
	}
	if vs := u.State().Vel.Vs; math.Abs(vs-target) > 1e-9 {
		t.Errorf("vs after capture = %v, want %v", vs, target)
	}
	// Acceleration must be bounded: after one 0.1 s step from level the
	// rate change is at most a*dt.
	u2, _ := New(cfg, State{Vel: geom.Velocity{Gs: 50, Vs: 0}})
	u2.Command(Command{HasVS: true, TargetVS: target})
	u2.Step(0.1, nil)
	if vs := u2.State().Vel.Vs; vs > cfg.VerticalAccel*0.1+1e-9 {
		t.Errorf("vs after one step = %v exceeds accel bound %v", vs, cfg.VerticalAccel*0.1)
	}
}

func TestResponseDelayDefersManeuver(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ResponseDelay = 2
	u, err := New(cfg, State{Vel: geom.Velocity{Gs: 50, Vs: 0}})
	if err != nil {
		t.Fatal(err)
	}
	u.Command(Command{HasVS: true, TargetVS: geom.FPM(1500)})
	if u.Maneuvering() {
		t.Error("maneuvering before delay elapsed")
	}
	u.Step(1, nil)
	if vs := u.State().Vel.Vs; vs != 0 {
		t.Errorf("vs during response delay = %v, want 0", vs)
	}
	u.Step(1, nil) // delay now elapsed
	u.Step(1, nil)
	if !u.Maneuvering() {
		t.Error("not maneuvering after delay")
	}
	if vs := u.State().Vel.Vs; vs <= 0 {
		t.Errorf("vs after delay = %v, want > 0", vs)
	}
}

func TestCommandTransitionKeepsCompliance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ResponseDelay = 1
	u, err := New(cfg, State{Vel: geom.Velocity{Gs: 50, Vs: 0}})
	if err != nil {
		t.Fatal(err)
	}
	u.Command(Command{HasVS: true, TargetVS: geom.FPM(1500)})
	for i := 0; i < 30; i++ {
		u.Step(0.1, nil)
	}
	if !u.Maneuvering() {
		t.Fatal("should be maneuvering")
	}
	// Strengthening must not restart the response delay.
	u.Command(Command{HasVS: true, TargetVS: geom.FPM(2500), Strengthen: true})
	if !u.Maneuvering() {
		t.Error("strengthen restarted the response delay")
	}
	vsBefore := u.State().Vel.Vs
	u.Step(0.5, nil)
	if u.State().Vel.Vs <= vsBefore {
		t.Error("strengthened command not increasing vertical rate")
	}
}

func TestReissuingSameCommandIsIdempotent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ResponseDelay = 1
	u, err := New(cfg, State{Vel: geom.Velocity{Gs: 50, Vs: 0}})
	if err != nil {
		t.Fatal(err)
	}
	cmd := Command{HasVS: true, TargetVS: geom.FPM(1500)}
	u.Command(cmd)
	u.Step(0.6, nil)
	u.Command(cmd) // must not reset the remaining 0.4 s delay
	u.Step(0.6, nil)
	if !u.Maneuvering() {
		t.Error("re-issuing an identical command reset the response delay")
	}
}

func TestClearCommandReturnsToPlan(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ResponseDelay = 0
	plan := geom.Velocity{Gs: 50, Vs: geom.FPM(-500)}
	u, err := New(cfg, State{Vel: plan})
	if err != nil {
		t.Fatal(err)
	}
	u.Command(Command{HasVS: true, TargetVS: geom.FPM(1500)})
	for i := 0; i < 60; i++ {
		u.Step(0.1, nil)
	}
	u.ClearCommand()
	if u.HasCommand() {
		t.Error("command still active after clear")
	}
	for i := 0; i < 100; i++ {
		u.Step(0.1, nil)
	}
	if vs := u.State().Vel.Vs; math.Abs(vs-plan.Vs) > 1e-9 {
		t.Errorf("vs after clear = %v, want plan %v", vs, plan.Vs)
	}
}

func TestVerticalRateLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ResponseDelay = 0
	u, err := New(cfg, State{Vel: geom.Velocity{Gs: 50}})
	if err != nil {
		t.Fatal(err)
	}
	u.Command(Command{HasVS: true, TargetVS: 100}) // far beyond the limit
	for i := 0; i < 300; i++ {
		u.Step(0.1, nil)
	}
	if vs := u.State().Vel.Vs; vs > cfg.MaxVerticalRate+1e-9 {
		t.Errorf("vs = %v exceeds limit %v", vs, cfg.MaxVerticalRate)
	}
}

func TestGroundSpeedNeverNegative(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SpeedNoise = 50 // absurd gusts
	u, err := New(cfg, State{Vel: geom.Velocity{Gs: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(8)
	for i := 0; i < 1000; i++ {
		u.Step(1, rng)
		if u.State().Vel.Gs < 0 {
			t.Fatal("negative ground speed")
		}
	}
}

func TestZeroDtIsNoop(t *testing.T) {
	u := newTestUAV(t, State{Pos: geom.Vec3{X: 1}, Vel: geom.Velocity{Gs: 10}})
	before := u.State()
	u.Step(0, stats.NewRNG(1))
	u.Step(-1, stats.NewRNG(1))
	if u.State() != before {
		t.Error("non-positive dt changed state")
	}
}

func TestDisturbanceIsUnbiased(t *testing.T) {
	cfg := DefaultConfig()
	var acc stats.Accumulator
	for trial := 0; trial < 200; trial++ {
		u, err := New(cfg, State{Vel: geom.Velocity{Gs: 50, Vs: 0}})
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewChildRNG(77, trial)
		for i := 0; i < 60; i++ {
			u.Step(1, rng)
		}
		acc.Add(u.State().Pos.Z)
	}
	// Mean altitude drift over 60 s should be near zero relative to spread.
	if math.Abs(acc.Mean()) > 4*acc.StdErr()+1 {
		t.Errorf("disturbance biased: mean z drift %v (stderr %v)", acc.Mean(), acc.StdErr())
	}
	if acc.StdDev() == 0 {
		t.Error("disturbance produced no spread at all")
	}
}

func TestSensorModelValidate(t *testing.T) {
	if err := DefaultSensorModel().Validate(); err != nil {
		t.Errorf("default sensor model invalid: %v", err)
	}
	bad := SensorModel{HorizontalPosSigma: -1}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for negative sigma")
	}
	bad2 := SensorModel{DropRate: 1.5}
	if err := bad2.Validate(); err == nil {
		t.Error("expected error for drop rate > 1")
	}
}

func TestObserveNoiseless(t *testing.T) {
	st := State{Pos: geom.Vec3{X: 1, Y: 2, Z: 3}, Vel: geom.Velocity{Gs: 10, Psi: 0, Vs: 1}}
	rep := DefaultSensorModel().Observe(st, 5, nil)
	if !rep.Valid {
		t.Fatal("noiseless report invalid")
	}
	if rep.Pos != st.Pos {
		t.Errorf("pos = %v, want %v", rep.Pos, st.Pos)
	}
	if rep.Time != 5 {
		t.Errorf("time = %v", rep.Time)
	}
}

func TestObserveNoiseStatistics(t *testing.T) {
	m := SensorModel{HorizontalPosSigma: 10, VerticalPosSigma: 4, VelSigma: 0.5}
	st := State{Pos: geom.Vec3{}, Vel: geom.Velocity{Gs: 50}}
	rng := stats.NewRNG(3)
	var xErr, zErr stats.Accumulator
	for i := 0; i < 20000; i++ {
		rep := m.Observe(st, 0, rng)
		xErr.Add(rep.Pos.X)
		zErr.Add(rep.Pos.Z)
	}
	if math.Abs(xErr.StdDev()-10) > 0.5 {
		t.Errorf("horizontal error sd = %v, want ~10", xErr.StdDev())
	}
	if math.Abs(zErr.StdDev()-4) > 0.2 {
		t.Errorf("vertical error sd = %v, want ~4", zErr.StdDev())
	}
	if math.Abs(xErr.Mean()) > 0.3 {
		t.Errorf("horizontal error mean = %v, want ~0", xErr.Mean())
	}
}

func TestObserveDropRate(t *testing.T) {
	m := SensorModel{DropRate: 0.25}
	rng := stats.NewRNG(4)
	dropped := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if !m.Observe(State{}, 0, rng).Valid {
			dropped++
		}
	}
	got := float64(dropped) / n
	if math.Abs(got-0.25) > 0.02 {
		t.Errorf("drop rate = %v, want ~0.25", got)
	}
}

func BenchmarkStep(b *testing.B) {
	u, err := New(DefaultConfig(), State{Vel: geom.Velocity{Gs: 50}})
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u.Step(1, rng)
	}
}
