package acasxval

// Ablation benchmarks for the design choices DESIGN.md section 6 calls out:
// coordination, track filtering, sensor noise, response delay, table lookup
// mode, offline-model noise, and GA operator settings. Each bench reports
// the safety-relevant metric for both arms via b.ReportMetric, so
// `go test -bench=Ablation` prints a compact ablation table.

import (
	"testing"

	"acasxval/internal/core"
	"acasxval/internal/encounter"
	"acasxval/internal/ga"
	"acasxval/internal/sim"
	"acasxval/internal/stats"
	"acasxval/internal/uav"
)

// nmacRate runs the preset n times under cfg and returns the NMAC fraction.
func nmacRate(b *testing.B, p EncounterParams, mk func() (System, System), cfg RunConfig, n int, seed uint64) float64 {
	b.Helper()
	nmacs := 0
	own, intr := mk()
	for k := 0; k < n; k++ {
		res, err := RunEncounter(p, own, intr, cfg, stats.DeriveSeed(seed, k))
		if err != nil {
			b.Fatal(err)
		}
		if res.NMAC {
			nmacs++
		}
	}
	return float64(nmacs) / float64(n)
}

// BenchmarkAblationCoordination compares coordinated vs uncoordinated
// resolution on the symmetric head-on, where uncoordinated same-sense
// choices are the classic hazard.
func BenchmarkAblationCoordination(b *testing.B) {
	table := benchLogicTable(b)
	mk := func() (System, System) { return NewACASXU(table), NewACASXU(table) }
	p := PresetHeadOn()
	const n = 60
	var with, without float64
	for i := 0; i < b.N; i++ {
		cfg := DefaultRunConfig()
		cfg.Coordination = true
		with = nmacRate(b, p, mk, cfg, n, uint64(i)*2+1)
		cfg.Coordination = false
		without = nmacRate(b, p, mk, cfg, n, uint64(i)*2+1)
	}
	b.ReportMetric(with, "NMAC-coordinated")
	b.ReportMetric(without, "NMAC-uncoordinated")
}

// BenchmarkAblationTracker compares raw noisy ADS-B against alpha-beta
// filtered tracks under heavy sensor noise.
func BenchmarkAblationTracker(b *testing.B) {
	table := benchLogicTable(b)
	mk := func() (System, System) { return NewACASXU(table), NewACASXU(table) }
	p := PresetHeadOn()
	const n = 60
	var filtered, raw float64
	for i := 0; i < b.N; i++ {
		cfg := DefaultRunConfig()
		cfg.Sensor.HorizontalPosSigma = 30
		cfg.Sensor.VelSigma = 2
		cfg.UseTracker = true
		filtered = nmacRate(b, p, mk, cfg, n, uint64(i)*2+1)
		cfg.UseTracker = false
		raw = nmacRate(b, p, mk, cfg, n, uint64(i)*2+1)
	}
	b.ReportMetric(filtered, "NMAC-filtered")
	b.ReportMetric(raw, "NMAC-raw")
}

// BenchmarkAblationSensorNoise sweeps the ADS-B position-noise level and
// reports the head-on NMAC rate at each.
func BenchmarkAblationSensorNoise(b *testing.B) {
	table := benchLogicTable(b)
	mk := func() (System, System) { return NewACASXU(table), NewACASXU(table) }
	p := PresetHeadOn()
	const n = 50
	var r0, r10, r50 float64
	for i := 0; i < b.N; i++ {
		cfg := DefaultRunConfig()
		cfg.Sensor = uav.SensorModel{}
		r0 = nmacRate(b, p, mk, cfg, n, uint64(i)+1)
		cfg.Sensor = uav.DefaultSensorModel()
		r10 = nmacRate(b, p, mk, cfg, n, uint64(i)+1)
		cfg.Sensor.HorizontalPosSigma = 50
		cfg.Sensor.VerticalPosSigma = 20
		cfg.Sensor.VelSigma = 3
		r50 = nmacRate(b, p, mk, cfg, n, uint64(i)+1)
	}
	b.ReportMetric(r0, "NMAC-sigma0")
	b.ReportMetric(r10, "NMAC-sigma10")
	b.ReportMetric(r50, "NMAC-sigma50")
}

// BenchmarkAblationResponseDelay sweeps the maneuver response delay.
func BenchmarkAblationResponseDelay(b *testing.B) {
	table := benchLogicTable(b)
	mk := func() (System, System) { return NewACASXU(table), NewACASXU(table) }
	p := PresetHeadOn()
	const n = 50
	var d0, d1, d5 float64
	for i := 0; i < b.N; i++ {
		cfg := DefaultRunConfig()
		cfg.OwnUAV.ResponseDelay = 0
		cfg.IntruderUAV.ResponseDelay = 0
		d0 = nmacRate(b, p, mk, cfg, n, uint64(i)+1)
		cfg.OwnUAV.ResponseDelay = 1
		cfg.IntruderUAV.ResponseDelay = 1
		d1 = nmacRate(b, p, mk, cfg, n, uint64(i)+1)
		cfg.OwnUAV.ResponseDelay = 5
		cfg.IntruderUAV.ResponseDelay = 5
		d5 = nmacRate(b, p, mk, cfg, n, uint64(i)+1)
	}
	b.ReportMetric(d0, "NMAC-delay0s")
	b.ReportMetric(d1, "NMAC-delay1s")
	b.ReportMetric(d5, "NMAC-delay5s")
}

// BenchmarkAblationLookupMode compares interpolated against
// nearest-neighbour table lookup (section IV lists discretization +
// interpolation as an inaccuracy source).
func BenchmarkAblationLookupMode(b *testing.B) {
	table := benchLogicTable(b)
	var interpQ, nearestQ float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Off-grid query in the alerting region.
		const tau, h, dh0, dh1 = 11.3, 37.5, 1.2, -2.7
		ai, _ := table.BestAdvisory(tau, h, dh0, dh1, COC, SenseMask{})
		an, _ := table.BestAdvisoryNearest(tau, h, dh0, dh1, COC, SenseMask{})
		interpQ = table.QValue(tau, h, dh0, dh1, COC, ai)
		nearestQ = table.QValue(tau, h, dh0, dh1, COC, an)
	}
	b.ReportMetric(interpQ, "Q-of-interp-choice")
	b.ReportMetric(nearestQ, "Q-of-nearest-choice")
}

// BenchmarkAblationGAOperators compares crossover operators on the search
// problem at small scale: final-generation mean fitness per operator.
func BenchmarkAblationGAOperators(b *testing.B) {
	table := benchLogicTable(b)
	factory := func() (sim.System, sim.System) {
		return NewACASXU(table), NewACASXU(table)
	}
	run := func(op ga.CrossoverOp, seed uint64) float64 {
		cfg := DefaultSearchConfig()
		cfg.GA.PopulationSize = 16
		cfg.GA.Generations = 3
		cfg.GA.Crossover = op
		cfg.GA.Seed = seed
		cfg.GA.RecordEvaluations = false
		cfg.Fitness.SimsPerEncounter = 6
		res, err := Search(cfg, factory, 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		return res.PerGeneration[len(res.PerGeneration)-1].Mean
	}
	var onePoint, uniform, blend float64
	for i := 0; i < b.N; i++ {
		seed := uint64(i + 1)
		onePoint = run(ga.OnePoint, seed)
		uniform = run(ga.UniformX, seed)
		blend = run(ga.Blend, seed)
	}
	b.ReportMetric(onePoint, "final-mean-onepoint")
	b.ReportMetric(uniform, "final-mean-uniform")
	b.ReportMetric(blend, "final-mean-blend")
}

// BenchmarkAblationBeliefExecutive compares the point-estimate executive
// against the QMDP belief-weighted executive under heavy sensor noise
// (the paper's section IV POMDP question).
func BenchmarkAblationBeliefExecutive(b *testing.B) {
	table := benchLogicTable(b)
	mkPoint := func() (System, System) { return NewACASXU(table), NewACASXU(table) }
	mkBelief := func() (System, System) {
		a, err := NewACASXUBelief(table, DefaultBeliefSigmas())
		if err != nil {
			b.Fatal(err)
		}
		c, err := NewACASXUBelief(table, DefaultBeliefSigmas())
		if err != nil {
			b.Fatal(err)
		}
		return a, c
	}
	p := PresetHeadOn()
	const n = 50
	var point, belief float64
	for i := 0; i < b.N; i++ {
		cfg := DefaultRunConfig()
		cfg.Sensor.HorizontalPosSigma = 30
		cfg.Sensor.VerticalPosSigma = 12
		cfg.Sensor.VelSigma = 2
		point = nmacRate(b, p, mkPoint, cfg, n, uint64(i)+1)
		belief = nmacRate(b, p, mkBelief, cfg, n, uint64(i)+1)
	}
	b.ReportMetric(point, "NMAC-point-executive")
	b.ReportMetric(belief, "NMAC-belief-executive")
}

// BenchmarkAblationModelRevision measures the tail-approach NMAC rate of
// the original system against the revised model (DMOD 500 m + vertical-tau
// fallback) — the paper's improvement loop closed (examples/modelrevision).
func BenchmarkAblationModelRevision(b *testing.B) {
	original := benchLogicTable(b)
	revCfg := DefaultTableConfig()
	revCfg.Workers = 8
	revCfg.DMOD = 500
	revCfg.UseVerticalTau = true
	revised, err := BuildLogicTable(revCfg)
	if err != nil {
		b.Fatal(err)
	}
	p := PresetTailApproach()
	const n = 50
	var orig, rev float64
	for i := 0; i < b.N; i++ {
		cfg := DefaultRunConfig()
		orig = nmacRate(b, p, func() (System, System) {
			return NewACASXU(original), NewACASXU(original)
		}, cfg, n, uint64(i)+1)
		rev = nmacRate(b, p, func() (System, System) {
			return NewACASXU(revised), NewACASXU(revised)
		}, cfg, n, uint64(i)+1)
	}
	b.ReportMetric(orig, "tail-NMAC-original")
	b.ReportMetric(rev, "tail-NMAC-revised")
}

// BenchmarkAblationFitnessSims sweeps K (simulations per encounter): the
// variance-vs-cost trade of the paper's 100-run averaging.
func BenchmarkAblationFitnessSims(b *testing.B) {
	table := benchLogicTable(b)
	factory := func() (sim.System, sim.System) {
		return NewACASXU(table), NewACASXU(table)
	}
	p := PresetTailApproach()
	measure := func(k int, seed uint64) float64 {
		cfg := DefaultSearchConfig().Fitness
		cfg.SimsPerEncounter = k
		ev, err := core.NewEvaluator(encounter.DefaultRanges(), factory, cfg)
		if err != nil {
			b.Fatal(err)
		}
		out, err := ev.EvaluateEncounter(p, seed)
		if err != nil {
			b.Fatal(err)
		}
		return out.Fitness
	}
	// Spread of the fitness estimate across seeds for K=5 vs K=50.
	var sd5, sd50 float64
	for i := 0; i < b.N; i++ {
		var a5, a50 stats.Accumulator
		for s := 0; s < 8; s++ {
			a5.Add(measure(5, uint64(i*100+s)))
			a50.Add(measure(50, uint64(i*100+s)))
		}
		sd5 = a5.StdDev()
		sd50 = a50.StdDev()
	}
	b.ReportMetric(sd5, "fitness-sd-K5")
	b.ReportMetric(sd50, "fitness-sd-K50")
}
